//! Arrival processes.
//!
//! The paper's benchmarking varies traffic through the arrival process:
//! Poisson arrivals at a target rate (Figure 14's sweep), gamma-distributed
//! inter-arrivals with a *burstiness* shape parameter (vLLM's serving
//! benchmark, used for Figure 7), all-at-once batch submission (peak
//! throughput), and fixed-cadence grouped arrivals (Mooncake's ~9 requests
//! every ~3 s).

use rand::Rng;
use sp_metrics::{Dur, SimTime};

/// Samples a unit-mean exponential variate.
fn exp_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Inverse CDF; guard the log away from 0.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

/// Samples a gamma variate with `shape` and unit scale
/// (Marsaglia–Tsang for shape ≥ 1, boost trick below 1).
fn gamma_unit<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boosting: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma_unit(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Generates `count` Poisson arrival instants at `rate` requests/second
/// starting from `start`.
///
/// # Panics
///
/// Panics if `rate` is not positive.
pub fn poisson<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    rate: f64,
    start: SimTime,
) -> Vec<SimTime> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut t = start;
    (0..count)
        .map(|_| {
            t += Dur::from_secs(exp_unit(rng) / rate);
            t
        })
        .collect()
}

/// Generates `count` arrivals with gamma inter-arrival times at mean `rate`
/// requests/second; `burstiness` is the gamma shape (1 = Poisson; < 1 =
/// burstier, matching vLLM's `--burstiness` knob).
///
/// # Panics
///
/// Panics if `rate` or `burstiness` is not positive.
pub fn gamma<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    rate: f64,
    burstiness: f64,
    start: SimTime,
) -> Vec<SimTime> {
    assert!(rate > 0.0, "arrival rate must be positive");
    assert!(burstiness > 0.0, "burstiness must be positive");
    let mut t = start;
    (0..count)
        .map(|_| {
            // Gamma(shape=b, scale=1/(b·rate)) has mean 1/rate.
            let gap = gamma_unit(rng, burstiness) / (burstiness * rate);
            t += Dur::from_secs(gap);
            t
        })
        .collect()
}

/// `count` arrivals all at `start` (peak-throughput batch submission).
pub fn all_at_once(count: usize, start: SimTime) -> Vec<SimTime> {
    vec![start; count]
}

/// Groups of `group_size` simultaneous arrivals every `period`, until
/// `count` arrivals are produced (the Mooncake cadence).
///
/// # Panics
///
/// Panics if `group_size` is zero or `period` is zero.
pub fn grouped(count: usize, group_size: usize, period: Dur, start: SimTime) -> Vec<SimTime> {
    assert!(group_size > 0, "group size must be positive");
    assert!(!period.is_zero(), "period must be positive");
    (0..count).map(|i| start + period * (i / group_size) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_rate_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        let arrivals = poisson(&mut rng, 20_000, 5.0, SimTime::ZERO);
        let span = arrivals.last().unwrap().as_secs();
        let rate = arrivals.len() as f64 / span;
        assert!((4.7..5.3).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn gamma_shape_one_is_poisson_like() {
        let mut rng = StdRng::seed_from_u64(7);
        let arrivals = gamma(&mut rng, 20_000, 5.0, 1.0, SimTime::ZERO);
        let span = arrivals.last().unwrap().as_secs();
        let rate = arrivals.len() as f64 / span;
        assert!((4.7..5.3).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn low_burstiness_increases_gap_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let var = |arrivals: &[SimTime]| {
            let gaps: Vec<f64> =
                arrivals.windows(2).map(|w| w[1].as_secs() - w[0].as_secs()).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64
        };
        let bursty = gamma(&mut rng, 10_000, 5.0, 0.2, SimTime::ZERO);
        let smooth = gamma(&mut rng, 10_000, 5.0, 5.0, SimTime::ZERO);
        assert!(var(&bursty) > 3.0 * var(&smooth));
    }

    #[test]
    fn all_at_once_is_simultaneous() {
        let a = all_at_once(5, SimTime::from_secs(2.0));
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|&t| t == SimTime::from_secs(2.0)));
    }

    #[test]
    fn grouped_produces_cadence() {
        let a = grouped(7, 3, Dur::from_secs(3.0), SimTime::ZERO);
        let secs: Vec<f64> = a.iter().map(|t| t.as_secs()).collect();
        assert_eq!(secs, vec![0.0, 0.0, 0.0, 3.0, 3.0, 3.0, 6.0]);
    }

    proptest! {
        #[test]
        fn arrivals_are_nondecreasing(seed in any::<u64>(), rate in 0.1f64..100.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            for arrivals in [
                poisson(&mut rng, 100, rate, SimTime::ZERO),
                gamma(&mut rng, 100, rate, 0.5, SimTime::ZERO),
                grouped(100, 9, Dur::from_secs(3.0), SimTime::ZERO),
            ] {
                for w in arrivals.windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
            }
        }

        #[test]
        fn gamma_mean_tracks_rate(
            seed in any::<u64>(), rate in 1.0f64..20.0, shape in 0.3f64..3.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let arrivals = gamma(&mut rng, 5_000, rate, shape, SimTime::ZERO);
            let span = arrivals.last().unwrap().as_secs();
            let measured = arrivals.len() as f64 / span;
            prop_assert!((measured / rate - 1.0).abs() < 0.25,
                "rate {rate} measured {measured}");
        }
    }
}
