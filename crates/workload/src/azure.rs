//! Statistical regenerator of the Azure LLM Code trace (Figure 8a).
//!
//! The original trace (Patel et al., Splitwise/ISCA'24) records real-world
//! agentic code completion on Azure: long code-context prompts, short
//! completions, and a bursty arrival pattern with silent regions and a few
//! prominent bursts (the paper calls out requests ~437, ~1091, ~2181 as
//! burst onsets in its 15-minute replay, Figure 9).
//!
//! We regenerate a trace with the same published shape: a two-state
//! (silent/burst) arrival process and log-normal code-completion sizes.

use crate::arrival;
use crate::request::{Request, RequestClass, Trace};
use crate::sizes::LengthDist;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sp_metrics::{Dur, SimTime};

/// Parameters of the Azure-code-like regenerator.
#[derive(Debug, Clone, PartialEq)]
pub struct AzureCodeConfig {
    /// Trace duration (the paper replays 15 minutes).
    pub duration: Dur,
    /// Arrival rate during silent (low-traffic) regions, req/s.
    pub silent_rate: f64,
    /// Arrival rate during bursts, req/s.
    pub burst_rate: f64,
    /// Number of prominent bursts (Figure 9 shows three).
    pub bursts: usize,
    /// Duration of each burst.
    pub burst_len: Dur,
    /// Prompt length distribution (code context: long, heavy-tailed).
    pub input: LengthDist,
    /// Output length distribution (completions: short).
    pub output: LengthDist,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AzureCodeConfig {
    fn default() -> AzureCodeConfig {
        AzureCodeConfig {
            duration: Dur::from_secs(900.0),
            silent_rate: 2.0,
            burst_rate: 14.0,
            bursts: 3,
            burst_len: Dur::from_secs(25.0),
            input: LengthDist::LogNormal { median: 2500.0, sigma: 1.0 },
            output: LengthDist::LogNormal { median: 40.0, sigma: 0.9 },
            seed: 0x000A_20BE,
        }
    }
}

impl AzureCodeConfig {
    /// Generates the trace (~2.5k requests at the default 15-minute
    /// duration, matching the paper's replay volume).
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dur = self.duration.as_secs();

        // Burst onsets: roughly evenly spaced with jitter, echoing the
        // three prominent bursts of Figure 9.
        let burst_starts: Vec<f64> = (0..self.bursts)
            .map(|b| {
                let frac = (b as f64 + 0.7) / (self.bursts as f64 + 0.4);
                let jitter: f64 = rng.gen_range(-0.05..0.05);
                ((frac + jitter) * dur).clamp(0.0, dur - self.burst_len.as_secs())
            })
            .collect();

        let mut requests = Vec::new();
        let sample_req = |arrival: SimTime, rng: &mut StdRng, input: &LengthDist| Request {
            id: 0,
            arrival,
            input_tokens: input.sample(rng).min(32_768),
            output_tokens: self.output.sample(rng),
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        };

        // Silent-region traffic across the whole duration.
        let silent_count = (self.silent_rate * dur).round() as usize;
        for arrival in arrival::poisson(&mut rng, silent_count, self.silent_rate, SimTime::ZERO) {
            if arrival.as_secs() <= dur {
                let r = sample_req(arrival, &mut rng, &self.input);
                requests.push(r);
            }
        }

        // Burst traffic.
        for &start in &burst_starts {
            let count = (self.burst_rate * self.burst_len.as_secs()).round() as usize;
            for arrival in
                arrival::poisson(&mut rng, count, self.burst_rate, SimTime::from_secs(start))
            {
                if arrival.as_secs() <= dur {
                    let r = sample_req(arrival, &mut rng, &self.input);
                    requests.push(r);
                }
            }
        }

        Trace::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_volume_matches_paper_replay() {
        let trace = AzureCodeConfig::default().generate();
        // Figure 9's x-axis runs to ~2600 requests over 15 minutes.
        assert!(
            (2000..3400).contains(&trace.len()),
            "Azure-like trace has {} requests",
            trace.len()
        );
        assert!(trace.span().as_secs() <= 900.0);
    }

    #[test]
    fn inputs_long_outputs_short() {
        let trace = AzureCodeConfig::default().generate();
        let mean_in = trace.total_input_tokens() as f64 / trace.len() as f64;
        let mean_out = trace.total_output_tokens() as f64 / trace.len() as f64;
        assert!(mean_in > 2000.0, "mean input {mean_in}");
        assert!(mean_out < 200.0, "mean output {mean_out}");
    }

    #[test]
    fn trace_is_bursty() {
        let trace = AzureCodeConfig::default().generate();
        let hist = trace.arrival_histogram(Dur::from_secs(15.0));
        let counts: Vec<usize> = hist.iter().map(|&(_, c)| c).collect();
        let peak = *counts.iter().max().unwrap();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!(peak >= 4 * median.max(1), "peak {peak} vs median {median}");
    }

    #[test]
    fn inputs_are_capped() {
        let trace = AzureCodeConfig::default().generate();
        assert!(trace.requests().iter().all(|r| r.input_tokens <= 32_768));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(AzureCodeConfig::default().generate(), AzureCodeConfig::default().generate());
    }
}
