//! Regenerator of the Mooncake conversation trace (Figure 8b).
//!
//! The original trace (Qin et al., FAST'25) records chatbot conversations
//! on Moonshot AI's platform. The paper characterizes its replay window as
//! "a steady arrival of medium input, long output, where a batch of nearly
//! 9 requests is sent every 3 seconds" — a heavier, KV-cache-hungry
//! workload that overflows TP and DP deployments on a single node
//! (Figure 10).

use crate::arrival;
use crate::request::{Request, RequestClass, Trace};
use crate::sizes::LengthDist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_metrics::{Dur, SimTime};

/// Parameters of the Mooncake-conversation-like regenerator.
#[derive(Debug, Clone, PartialEq)]
pub struct MooncakeConfig {
    /// Trace duration (the paper replays 15 minutes).
    pub duration: Dur,
    /// Requests per arrival group ("a batch of nearly 9 requests").
    pub group_size: usize,
    /// Period between groups ("every 3 seconds").
    pub period: Dur,
    /// Prompt lengths (conversation context: medium, accumulating turns).
    pub input: LengthDist,
    /// Output lengths (assistant replies: long).
    pub output: LengthDist,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MooncakeConfig {
    fn default() -> MooncakeConfig {
        MooncakeConfig {
            duration: Dur::from_secs(900.0),
            group_size: 9,
            period: Dur::from_secs(3.0),
            input: LengthDist::LogNormal { median: 13_000.0, sigma: 1.1 },
            output: LengthDist::LogNormal { median: 600.0, sigma: 0.6 },
            seed: 0x30_0C_A3,
        }
    }
}

impl MooncakeConfig {
    /// Generates the trace (~2.7k requests at the default duration).
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let groups = (self.duration.as_secs() / self.period.as_secs()) as usize;
        let count = groups * self.group_size;
        arrival::grouped(count, self.group_size, self.period, SimTime::ZERO)
            .into_iter()
            .map(|arrival| Request {
                id: 0,
                arrival,
                input_tokens: self.input.sample(&mut rng).min(65_536),
                output_tokens: self.output.sample(&mut rng),
                class: RequestClass::Interactive,
                cached_prefix: 0,
                prefix_group: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_volume_and_cadence() {
        let trace = MooncakeConfig::default().generate();
        assert_eq!(trace.len(), 300 * 9);
        // Steady: every 3 s bin holds exactly one group.
        let hist = trace.arrival_histogram(Dur::from_secs(3.0));
        assert!(hist.iter().all(|&(_, c)| c == 9));
    }

    #[test]
    fn medium_input_long_output() {
        let trace = MooncakeConfig::default().generate();
        let mean_in = trace.total_input_tokens() as f64 / trace.len() as f64;
        let mean_out = trace.total_output_tokens() as f64 / trace.len() as f64;
        assert!((8000.0..26000.0).contains(&mean_in), "mean input {mean_in}");
        assert!(mean_out > 300.0, "mean output {mean_out}");
    }

    #[test]
    fn heavier_than_azure_workload() {
        // Figure 10: "the Mooncake trace involves a heavier workload".
        let mooncake = MooncakeConfig::default().generate();
        let azure = crate::azure::AzureCodeConfig::default().generate();
        let rate = |t: &Trace| t.total_tokens() as f64 / t.span().as_secs();
        assert!(rate(&mooncake) > 1.5 * rate(&azure));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(MooncakeConfig::default().generate(), MooncakeConfig::default().generate());
    }
}
