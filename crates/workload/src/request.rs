//! Requests and traces.

use sp_metrics::{Dur, SimTime};

/// Quality-of-service class of a request (§2.1). Defined in `sp-metrics`
/// (so completed-request records carry it); re-exported here because the
/// workload crate is where requests are born.
pub use sp_metrics::RequestClass;

/// One inference request: a prompt of `input_tokens` arriving at `arrival`,
/// generating `output_tokens`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Unique id within a trace.
    pub id: u64,
    /// When the client submits the request.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Output length in tokens (known a priori in replay, like the paper's
    /// trace-driven evaluation).
    pub output_tokens: u32,
    /// QoS class.
    pub class: RequestClass,
    /// Prompt tokens already present in a shared prefix cache (multi-turn
    /// conversations re-submitting their context). Engines with prefix
    /// caching enabled skip prefilling them.
    pub cached_prefix: u32,
    /// Identity of the shared prefix (e.g. a session id). Engines with
    /// prefix caching share the cached tokens' KV *memory* across
    /// requests of the same group instead of duplicating it.
    pub prefix_group: Option<u64>,
}

impl Request {
    /// Prompt + output tokens.
    pub fn total_tokens(&self) -> u64 {
        u64::from(self.input_tokens) + u64::from(self.output_tokens)
    }

    /// The instant by which this request's first token must be emitted to
    /// attain its class's TTFT target — the deadline SLO-aware admission
    /// and deadline-aware routing act on.
    pub fn ttft_deadline(&self, slo: &sp_metrics::ClassSlo) -> SimTime {
        slo.ttft_deadline(self.arrival, self.class)
    }

    /// Serializes the request as one JSON object (the cleaned-trace
    /// format of the paper's artifact).
    pub fn to_json(&self) -> String {
        let class = match self.class {
            RequestClass::Interactive => "Interactive",
            RequestClass::Batch => "Batch",
        };
        let group = match self.prefix_group {
            Some(g) => g.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"arrival\":{},\"input_tokens\":{},\"output_tokens\":{},\
             \"class\":\"{class}\",\"cached_prefix\":{},\"prefix_group\":{group}}}",
            self.id,
            self.arrival.as_secs(),
            self.input_tokens,
            self.output_tokens,
            self.cached_prefix,
        )
    }

    /// Parses a request from one JSON object produced by
    /// [`Request::to_json`] (unknown keys are ignored; `cached_prefix`
    /// and `prefix_group` default when absent).
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] for malformed input.
    pub fn from_json(s: &str) -> Result<Request, TraceParseError> {
        let fields = json::parse_object(s)?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
        let req_num = |key: &str| -> Result<f64, TraceParseError> {
            let v = get(key).ok_or_else(|| TraceParseError::missing(key))?;
            v.parse::<f64>().map_err(|_| TraceParseError::bad_value(key, v))
        };
        let class = match get("class") {
            Some("\"Interactive\"") | None => RequestClass::Interactive,
            Some("\"Batch\"") => RequestClass::Batch,
            Some(v) => return Err(TraceParseError::bad_value("class", v)),
        };
        let prefix_group = match get("prefix_group") {
            None | Some("null") => None,
            Some(v) => {
                Some(v.parse::<u64>().map_err(|_| TraceParseError::bad_value("prefix_group", v))?)
            }
        };
        let cached_prefix = match get("cached_prefix") {
            None => 0,
            Some(v) => {
                v.parse::<u32>().map_err(|_| TraceParseError::bad_value("cached_prefix", v))?
            }
        };
        Ok(Request {
            id: req_num("id")? as u64,
            arrival: SimTime::from_secs(req_num("arrival")?),
            input_tokens: req_num("input_tokens")? as u32,
            output_tokens: req_num("output_tokens")? as u32,
            class,
            cached_prefix,
            prefix_group,
        })
    }
}

/// Why a JSON-lines trace failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    message: String,
}

impl TraceParseError {
    fn new(message: impl Into<String>) -> TraceParseError {
        TraceParseError { message: message.into() }
    }

    fn missing(key: &str) -> TraceParseError {
        TraceParseError::new(format!("missing field `{key}`"))
    }

    fn bad_value(key: &str, value: &str) -> TraceParseError {
        TraceParseError::new(format!("invalid value for `{key}`: {value}"))
    }
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed trace line: {}", self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// A deliberately small flat-JSON reader: enough for the trace format
/// (one object per line, scalar values only), with no external
/// dependencies. Nested objects/arrays are rejected.
mod json {
    use super::TraceParseError;

    /// Splits `{"k":v,...}` into `(key, raw_value)` pairs. String values
    /// keep their surrounding quotes.
    pub fn parse_object(s: &str) -> Result<Vec<(String, String)>, TraceParseError> {
        let s = s.trim();
        let inner = s
            .strip_prefix('{')
            .and_then(|rest| rest.strip_suffix('}'))
            .ok_or_else(|| TraceParseError::new("expected a JSON object"))?;
        let mut fields = Vec::new();
        for part in split_top_level(inner)? {
            if part.trim().is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| TraceParseError::new("expected `key: value`"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| TraceParseError::new("expected a quoted key"))?;
            fields.push((key.to_string(), value.trim().to_string()));
        }
        Ok(fields)
    }

    /// Splits on commas that are not inside quotes.
    fn split_top_level(s: &str) -> Result<Vec<&str>, TraceParseError> {
        let mut parts = Vec::new();
        let mut start = 0;
        let mut in_string = false;
        for (i, c) in s.char_indices() {
            match c {
                '"' => in_string = !in_string,
                '{' | '[' if !in_string => {
                    return Err(TraceParseError::new("nested values are not supported"));
                }
                ',' if !in_string => {
                    parts.push(&s[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if in_string {
            return Err(TraceParseError::new("unterminated string"));
        }
        parts.push(&s[start..]);
        Ok(parts)
    }
}

/// A time-ordered sequence of requests.
///
/// # Examples
///
/// ```
/// use sp_metrics::SimTime;
/// use sp_workload::{Request, RequestClass, Trace};
///
/// let trace = Trace::new(vec![Request {
///     id: 0,
///     arrival: SimTime::ZERO,
///     input_tokens: 128,
///     output_tokens: 16,
///     class: RequestClass::Interactive,
///     cached_prefix: 0,
///     prefix_group: None,
/// }]);
/// assert_eq!(trace.total_tokens(), 144);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Creates a trace, sorting requests by arrival time and reassigning
    /// ids in arrival order.
    pub fn new(mut requests: Vec<Request>) -> Trace {
        requests.sort_by(|a, b| {
            a.arrival.as_secs().partial_cmp(&b.arrival.as_secs()).expect("finite times")
        });
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = i as u64;
        }
        Trace { requests }
    }

    /// Creates a trace preserving the requests' existing ids (used when
    /// slicing an already-numbered trace, e.g. routing shards to
    /// data-parallel replicas).
    pub fn with_ids(mut requests: Vec<Request>) -> Trace {
        requests.sort_by(|a, b| {
            a.arrival.as_secs().partial_cmp(&b.arrival.as_secs()).expect("finite times")
        });
        Trace { requests }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Time span from first to last arrival.
    pub fn span(&self) -> Dur {
        match (self.requests.first(), self.requests.last()) {
            (Some(first), Some(last)) => last.arrival.since(first.arrival),
            _ => Dur::ZERO,
        }
    }

    /// Total prompt + output tokens across all requests.
    pub fn total_tokens(&self) -> u64 {
        self.requests.iter().map(Request::total_tokens).sum()
    }

    /// Total prompt tokens.
    pub fn total_input_tokens(&self) -> u64 {
        self.requests.iter().map(|r| u64::from(r.input_tokens)).sum()
    }

    /// Total output tokens.
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| u64::from(r.output_tokens)).sum()
    }

    /// Mean request arrival rate over the span, requests/second.
    pub fn mean_arrival_rate(&self) -> f64 {
        let span = self.span().as_secs();
        if span == 0.0 {
            0.0
        } else {
            self.len() as f64 / span
        }
    }

    /// Requests arriving per `bin`-second window, for the Figure 2/7/8
    /// arrival-rate panels.
    pub fn arrival_histogram(&self, bin: Dur) -> Vec<(SimTime, usize)> {
        let mut series = sp_metrics::BinnedSeries::new(bin);
        for r in &self.requests {
            series.record(r.arrival, 1.0);
        }
        series.totals().map(|(t, v)| (t, v as usize)).collect()
    }

    /// Merges two traces, re-sorting by arrival.
    pub fn merge(self, other: Trace) -> Trace {
        let mut all = self.requests;
        all.extend(other.requests);
        Trace::new(all)
    }

    /// Serializes to JSON lines (one request per line), the cleaned-trace
    /// format of the paper's artifact.
    pub fn to_jsonl(&self) -> String {
        self.requests.iter().map(Request::to_json).collect::<Vec<_>>().join("\n")
    }

    /// Writes the trace to `path` as JSON lines.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Reads a trace from a JSON-lines file written by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files, or an
    /// `InvalidData` error for malformed lines.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Trace> {
        let text = std::fs::read_to_string(path)?;
        Trace::from_jsonl(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Parses a trace from JSON lines.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] for the first malformed line.
    pub fn from_jsonl(s: &str) -> Result<Trace, TraceParseError> {
        let requests = s
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(Request::from_json)
            .collect::<Result<Vec<Request>, _>>()?;
        Ok(Trace::new(requests))
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<T: IntoIterator<Item = Request>>(iter: T) -> Trace {
        Trace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(at: f64, inp: u32, out: u32) -> Request {
        Request {
            id: 0,
            arrival: SimTime::from_secs(at),
            input_tokens: inp,
            output_tokens: out,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        }
    }

    #[test]
    fn new_sorts_and_renumbers() {
        let t = Trace::new(vec![req(5.0, 1, 1), req(1.0, 2, 2), req(3.0, 3, 3)]);
        let arrivals: Vec<f64> = t.requests().iter().map(|r| r.arrival.as_secs()).collect();
        assert_eq!(arrivals, vec![1.0, 3.0, 5.0]);
        let ids: Vec<u64> = t.requests().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn token_totals() {
        let t = Trace::new(vec![req(0.0, 100, 10), req(1.0, 200, 20)]);
        assert_eq!(t.total_input_tokens(), 300);
        assert_eq!(t.total_output_tokens(), 30);
        assert_eq!(t.total_tokens(), 330);
    }

    #[test]
    fn span_and_rate() {
        let t = Trace::new(vec![req(0.0, 1, 1), req(10.0, 1, 1)]);
        assert_eq!(t.span().as_secs(), 10.0);
        assert_eq!(t.mean_arrival_rate(), 0.2);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.span(), Dur::ZERO);
        assert_eq!(t.mean_arrival_rate(), 0.0);
        assert!(t.arrival_histogram(Dur::from_secs(1.0)).is_empty());
    }

    #[test]
    fn arrival_histogram_bins_correctly() {
        let t = Trace::new(vec![req(0.1, 1, 1), req(0.2, 1, 1), req(2.5, 1, 1)]);
        let h = t.arrival_histogram(Dur::from_secs(1.0));
        assert_eq!(h[0].1, 2);
        assert_eq!(h[1].1, 0);
        assert_eq!(h[2].1, 1);
    }

    #[test]
    fn merge_interleaves_by_time() {
        let a = Trace::new(vec![req(0.0, 1, 1), req(4.0, 1, 1)]);
        let b = Trace::new(vec![req(2.0, 9, 9)]);
        let merged = a.merge(b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.requests()[1].input_tokens, 9);
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = Trace::new(vec![req(0.5, 128, 16), req(1.5, 64, 8)]);
        let parsed = Trace::from_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(Trace::from_jsonl("not json").is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let t = Trace::new(vec![req(0.5, 128, 16), req(1.5, 64, 8)]);
        let path = std::env::temp_dir().join("sp_trace_roundtrip_test.jsonl");
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, t);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(Trace::load("/nonexistent/sp_trace.jsonl").is_err());
    }
}
