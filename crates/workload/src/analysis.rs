//! Workload characterization.
//!
//! §2.1 observes that production traffic mixes interactive and batch
//! requests into bursty, dynamic patterns. This module quantifies a
//! trace's shape — the statistics an operator (or the auto-tuner in
//! `shift-core`) uses to pick a deployment.

use crate::request::{RequestClass, Trace};
use sp_metrics::{Dur, Quantiles};

/// Coarse traffic regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Low, steady rate of latency-sensitive requests.
    Interactive,
    /// High sustained token demand (bulk jobs).
    Batch,
    /// Pronounced bursts over a quiet baseline (Figure 2's pattern).
    Bursty,
    /// Steady but heavy mixed traffic.
    Mixed,
}

/// Measured shape of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Requests per second over the span.
    pub arrival_rate: f64,
    /// Coefficient of variation of inter-arrival gaps (1 ≈ Poisson,
    /// larger = burstier).
    pub arrival_cv: f64,
    /// Peak-to-mean ratio of per-window arrival counts.
    pub burstiness_ratio: f64,
    /// Mean prompt tokens.
    pub mean_input: f64,
    /// Mean output tokens.
    pub mean_output: f64,
    /// 99th-percentile prompt tokens.
    pub p99_input: f64,
    /// Sustained token demand, tokens/second.
    pub demand_tokens_per_sec: f64,
    /// Fraction of interactive-class requests.
    pub interactive_fraction: f64,
}

impl WorkloadProfile {
    /// Measures `trace` using `window`-wide bins for the burstiness ratio.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn measure(trace: &Trace, window: Dur) -> WorkloadProfile {
        assert!(!trace.is_empty(), "cannot profile an empty trace");
        let n = trace.len();

        let gaps: Vec<f64> = trace
            .requests()
            .windows(2)
            .map(|w| w[1].arrival.since(w[0].arrival).as_secs())
            .collect();
        let arrival_cv = if gaps.is_empty() {
            0.0
        } else {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            if mean == 0.0 {
                0.0
            } else {
                let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
                var.sqrt() / mean
            }
        };

        // Peak window population via a sliding window at half-window
        // stride: an aligned histogram splits a burst that straddles a bin
        // edge across two bins and underreports the peak.
        let w = window.as_secs();
        let arrivals: Vec<f64> = trace.requests().iter().map(|r| r.arrival.as_secs()).collect();
        let span_secs = trace.span().as_secs();
        let mut peak_count = 0usize;
        let mut lo = 0usize;
        let mut hi = 0usize;
        let mut start = arrivals.first().copied().unwrap_or(0.0);
        let last = arrivals.last().copied().unwrap_or(0.0);
        while start <= last {
            while lo < arrivals.len() && arrivals[lo] < start {
                lo += 1;
            }
            hi = hi.max(lo);
            while hi < arrivals.len() && arrivals[hi] < start + w {
                hi += 1;
            }
            peak_count = peak_count.max(hi - lo);
            start += w / 2.0;
        }
        let mean_count = if span_secs > w { n as f64 * w / span_secs } else { n as f64 };
        let burstiness_ratio = if mean_count > 0.0 { peak_count as f64 / mean_count } else { 0.0 };

        let mut input_q: Quantiles =
            trace.requests().iter().map(|r| f64::from(r.input_tokens)).collect();

        let span = trace.span().as_secs().max(1e-9);
        WorkloadProfile {
            arrival_rate: trace.mean_arrival_rate(),
            arrival_cv,
            burstiness_ratio,
            mean_input: trace.total_input_tokens() as f64 / n as f64,
            mean_output: trace.total_output_tokens() as f64 / n as f64,
            p99_input: input_q.quantile(0.99).unwrap_or(0.0),
            demand_tokens_per_sec: trace.total_tokens() as f64 / span,
            interactive_fraction: trace
                .requests()
                .iter()
                .filter(|r| r.class == RequestClass::Interactive)
                .count() as f64
                / n as f64,
        }
    }

    /// Classifies the regime.
    pub fn classify(&self) -> WorkloadClass {
        if self.burstiness_ratio > 3.0 {
            WorkloadClass::Bursty
        } else if self.demand_tokens_per_sec > 20_000.0 {
            if self.interactive_fraction > 0.5 {
                WorkloadClass::Mixed
            } else {
                WorkloadClass::Batch
            }
        } else {
            WorkloadClass::Interactive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::azure::AzureCodeConfig;
    use crate::bursty::BurstyConfig;
    use crate::mooncake::MooncakeConfig;
    use crate::synthetic;

    fn window() -> Dur {
        Dur::from_secs(15.0)
    }

    #[test]
    fn poisson_trace_has_unit_cv() {
        let trace = synthetic::poisson(5_000, 5.0, 512, 32, 3);
        let p = WorkloadProfile::measure(&trace, window());
        assert!((0.85..1.15).contains(&p.arrival_cv), "cv {}", p.arrival_cv);
        assert!((4.5..5.5).contains(&p.arrival_rate));
    }

    #[test]
    fn bursty_trace_classifies_bursty() {
        let trace = BurstyConfig::default().generate();
        let p = WorkloadProfile::measure(&trace, window());
        assert!(p.burstiness_ratio > 3.0, "ratio {}", p.burstiness_ratio);
        assert_eq!(p.classify(), WorkloadClass::Bursty);
    }

    #[test]
    fn light_poisson_classifies_interactive() {
        let trace = synthetic::poisson(100, 1.0, 2048, 128, 5);
        let p = WorkloadProfile::measure(&trace, window());
        assert_eq!(p.classify(), WorkloadClass::Interactive);
    }

    #[test]
    fn mooncake_is_heavy_and_steady() {
        let trace = MooncakeConfig::default().generate();
        let p = WorkloadProfile::measure(&trace, window());
        assert!(p.demand_tokens_per_sec > 20_000.0);
        assert!(p.burstiness_ratio < 3.0, "ratio {}", p.burstiness_ratio);
        assert_eq!(p.classify(), WorkloadClass::Mixed);
    }

    #[test]
    fn azure_profile_matches_published_shape() {
        let trace = AzureCodeConfig::default().generate();
        let p = WorkloadProfile::measure(&trace, window());
        assert!(p.mean_input > 10.0 * p.mean_output, "long in, short out");
        assert!(p.burstiness_ratio > 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_rejected() {
        let _ = WorkloadProfile::measure(&Trace::default(), window());
    }
}
