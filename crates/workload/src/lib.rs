//! Request workloads for the Shift Parallelism simulator.
//!
//! The paper's evaluation drives the serving system with four kinds of
//! traffic (§4.1.4); this crate regenerates all of them as deterministic,
//! seeded synthetic traces:
//!
//! * [`bursty`] — the bursty synthetic mix of Figures 2 and 7: a steady
//!   stream of interactive requests with periodic high-rate bursts of
//!   batch requests.
//! * [`azure`] — a statistical regenerator of the Azure LLM Code trace
//!   (Figure 8a): agentic code completion with silent and burst phases,
//!   long inputs and short outputs.
//! * [`mooncake`] — a regenerator of the Mooncake conversation trace
//!   (Figure 8b): a batch of ~9 requests every ~3 seconds with medium
//!   inputs and long outputs.
//! * [`synthetic`] — parameterized benchmarks (fixed request sizes,
//!   Poisson or all-at-once arrivals) for Figures 12–14 and 17.
//!
//! Substitution note (DESIGN.md): we do not ship the original trace files;
//! the regenerators match the published arrival patterns and size
//! distributions, which is what the evaluation conclusions depend on.
//!
//! # Examples
//!
//! ```
//! use sp_workload::synthetic;
//!
//! let trace = synthetic::poisson(100, 2.0, 4096, 250, 42);
//! assert_eq!(trace.len(), 100);
//! assert!(trace.requests().iter().all(|r| r.input_tokens == 4096));
//! ```

pub mod analysis;
pub mod arrival;
pub mod azure;
pub mod bursty;
pub mod mixed;
pub mod mooncake;
pub mod multiturn;
pub mod request;
pub mod sizes;
pub mod synthetic;

pub use request::{Request, RequestClass, Trace, TraceParseError};
