//! The production request mix used by §4.5 / Figure 16.
//!
//! "These experiments were run on data sets generated using real-world
//! production traces… and a mixture of ShareGPT, HumanEval and SWEBench to
//! measure latency." This module mixes the three archetypes:
//!
//! * **ShareGPT** — conversational turns: short-to-medium prompts, long
//!   chatty answers;
//! * **HumanEval** — one-shot code completion: short prompts, medium
//!   completions;
//! * **SWE-bench (agentic)** — repository-context prompts: long inputs,
//!   medium outputs, arriving in repeated closed-loop batches.

use crate::arrival;
use crate::request::{Request, RequestClass, Trace};
use crate::sizes::LengthDist;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sp_metrics::{Dur, SimTime};

/// One archetype of the mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Archetype {
    /// Name for reports.
    pub name: &'static str,
    /// Sampling weight (relative).
    pub weight: f64,
    /// Prompt lengths.
    pub input: LengthDist,
    /// Output lengths.
    pub output: LengthDist,
    /// QoS class.
    pub class: RequestClass,
}

/// Configuration of the production mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductionMixConfig {
    /// Trace duration.
    pub duration: Dur,
    /// Aggregate arrival rate, req/s.
    pub rate: f64,
    /// The archetypes and weights.
    pub archetypes: Vec<Archetype>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProductionMixConfig {
    fn default() -> ProductionMixConfig {
        ProductionMixConfig {
            duration: Dur::from_secs(300.0),
            rate: 4.0,
            archetypes: vec![
                Archetype {
                    name: "sharegpt",
                    weight: 0.5,
                    input: LengthDist::LogNormal { median: 600.0, sigma: 1.0 },
                    output: LengthDist::LogNormal { median: 350.0, sigma: 0.7 },
                    class: RequestClass::Interactive,
                },
                Archetype {
                    name: "humaneval",
                    weight: 0.2,
                    input: LengthDist::LogNormal { median: 220.0, sigma: 0.4 },
                    output: LengthDist::LogNormal { median: 250.0, sigma: 0.5 },
                    class: RequestClass::Interactive,
                },
                Archetype {
                    name: "swebench",
                    weight: 0.3,
                    input: LengthDist::LogNormal { median: 9000.0, sigma: 0.7 },
                    output: LengthDist::LogNormal { median: 400.0, sigma: 0.5 },
                    class: RequestClass::Batch,
                },
            ],
            seed: 0x41C,
        }
    }
}

impl ProductionMixConfig {
    /// Generates the mixed trace.
    ///
    /// # Panics
    ///
    /// Panics if the archetype list is empty or all weights are zero.
    pub fn generate(&self) -> Trace {
        assert!(!self.archetypes.is_empty(), "mix needs at least one archetype");
        let total_weight: f64 = self.archetypes.iter().map(|a| a.weight).sum();
        assert!(total_weight > 0.0, "mix weights must be positive");

        let mut rng = StdRng::seed_from_u64(self.seed);
        let count = (self.rate * self.duration.as_secs()).round() as usize;
        arrival::poisson(&mut rng, count, self.rate, SimTime::ZERO)
            .into_iter()
            .filter(|t| t.as_secs() <= self.duration.as_secs())
            .map(|arrival| {
                let mut pick: f64 = rng.gen_range(0.0..total_weight);
                let archetype = self
                    .archetypes
                    .iter()
                    .find(|a| {
                        pick -= a.weight;
                        pick <= 0.0
                    })
                    .unwrap_or_else(|| self.archetypes.last().expect("non-empty"));
                Request {
                    id: 0,
                    arrival,
                    input_tokens: archetype.input.sample(&mut rng).min(65_536),
                    output_tokens: archetype.output.sample(&mut rng),
                    class: archetype.class,
                    cached_prefix: 0,
                    prefix_group: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_has_both_classes() {
        let trace = ProductionMixConfig::default().generate();
        let interactive =
            trace.requests().iter().filter(|r| r.class == RequestClass::Interactive).count();
        let batch = trace.len() - interactive;
        // ~70% interactive, ~30% batch.
        let frac = interactive as f64 / trace.len() as f64;
        assert!((0.6..0.8).contains(&frac), "interactive fraction {frac}");
        assert!(batch > 0);
    }

    #[test]
    fn agentic_requests_have_long_prompts() {
        let trace = ProductionMixConfig::default().generate();
        let mean = |class: RequestClass| {
            let xs: Vec<f64> = trace
                .requests()
                .iter()
                .filter(|r| r.class == class)
                .map(|r| f64::from(r.input_tokens))
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(mean(RequestClass::Batch) > 5.0 * mean(RequestClass::Interactive));
    }

    #[test]
    fn rate_is_respected() {
        let cfg = ProductionMixConfig::default();
        let trace = cfg.generate();
        let measured = trace.mean_arrival_rate();
        assert!((measured / cfg.rate - 1.0).abs() < 0.2, "rate {measured}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            ProductionMixConfig::default().generate(),
            ProductionMixConfig::default().generate()
        );
    }

    #[test]
    #[should_panic(expected = "archetype")]
    fn empty_mix_rejected() {
        let cfg = ProductionMixConfig { archetypes: vec![], ..ProductionMixConfig::default() };
        let _ = cfg.generate();
    }
}
