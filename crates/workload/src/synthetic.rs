//! Parameterized synthetic benchmarks (Figures 12–14, 17).

use crate::arrival;
use crate::request::{Request, RequestClass, Trace};
use crate::sizes::LengthDist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_metrics::SimTime;

/// `count` identical requests submitted all at once — the peak-throughput
/// probe of §4.3.1 ("send a batch of requests and provide sufficient
/// concurrency to saturate the GPU").
pub fn uniform_batch(count: usize, input_tokens: u32, output_tokens: u32) -> Trace {
    (0..count)
        .map(|i| Request {
            id: i as u64,
            arrival: SimTime::ZERO,
            input_tokens,
            output_tokens,
            class: RequestClass::Batch,
            cached_prefix: 0,
            prefix_group: None,
        })
        .collect()
}

/// One isolated request — the minimum-latency probe of §4.3.1 ("process
/// requests sequentially, a single request at a time").
pub fn single(input_tokens: u32, output_tokens: u32) -> Trace {
    uniform_batch(1, input_tokens, output_tokens)
}

/// `count` identical requests with Poisson arrivals at `rate` req/s — the
/// arrival-rate sweep of Figure 14.
pub fn poisson(count: usize, rate: f64, input_tokens: u32, output_tokens: u32, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    arrival::poisson(&mut rng, count, rate, SimTime::ZERO)
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| Request {
            id: i as u64,
            arrival,
            input_tokens,
            output_tokens,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        })
        .collect()
}

/// Poisson arrivals with sampled sizes.
pub fn poisson_sized(
    count: usize,
    rate: f64,
    input: &LengthDist,
    output: &LengthDist,
    seed: u64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    arrival::poisson(&mut rng, count, rate, SimTime::ZERO)
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| Request {
            id: i as u64,
            arrival,
            input_tokens: input.sample(&mut rng),
            output_tokens: output.sample(&mut rng),
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_batch_is_simultaneous_and_identical() {
        let t = uniform_batch(10, 4096, 250);
        assert_eq!(t.len(), 10);
        assert!(t.requests().iter().all(|r| r.arrival == SimTime::ZERO && r.input_tokens == 4096));
        assert_eq!(t.total_tokens(), 10 * (4096 + 250));
    }

    #[test]
    fn single_has_one_request() {
        let t = single(8192, 250);
        assert_eq!(t.len(), 1);
        assert_eq!(t.requests()[0].class, RequestClass::Batch);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = poisson(50, 2.0, 1024, 128, 9);
        let b = poisson(50, 2.0, 1024, 128, 9);
        assert_eq!(a, b);
        let c = poisson(50, 2.0, 1024, 128, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_sized_samples_lengths() {
        let t = poisson_sized(
            200,
            5.0,
            &LengthDist::Uniform { lo: 100, hi: 200 },
            &LengthDist::Fixed(32),
            1,
        );
        assert!(t.requests().iter().all(|r| (100..=200).contains(&r.input_tokens)));
        assert!(t.requests().iter().all(|r| r.output_tokens == 32));
    }
}
