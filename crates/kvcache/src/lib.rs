//! Paged KV-cache substrate.
//!
//! Replaces vLLM's PagedAttention memory manager with a token-accurate
//! block allocator, plus the head-sharding layout logic that makes Shift
//! Parallelism possible:
//!
//! * [`allocator::BlockAllocator`] — fixed pool of fixed-size token blocks.
//! * [`manager::KvCacheManager`] — per-sequence block accounting with
//!   admission control (the engine refuses work that would overflow the
//!   cache, reproducing the Mooncake wait-time experiment, Figure 10).
//! * [`layout::KvShardLayout`] — how KV heads are distributed across an
//!   attention-parallel group, including **KV-cache replication** when the
//!   parallelism degree exceeds the KV head count (§3.2.1: Qwen-30B-A3B has
//!   4 KV heads but must scale to 8 GPUs).
//!
//! # Examples
//!
//! ```
//! use sp_kvcache::KvCacheManager;
//!
//! let mut kv = KvCacheManager::new(1024, 16);
//! assert!(kv.try_reserve(1, 100));
//! assert_eq!(kv.used_tokens(), 100);
//! kv.release(1);
//! assert_eq!(kv.used_tokens(), 0);
//! ```

pub mod allocator;
pub mod layout;
pub mod manager;

pub use allocator::BlockAllocator;
pub use layout::KvShardLayout;
pub use manager::KvCacheManager;
