//! Fixed-pool block allocator.

/// Identifier of one KV-cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A pool of equally-sized KV blocks, allocated and freed in O(1).
///
/// Blocks are recycled LIFO from a free list, mirroring how PagedAttention
/// avoids external fragmentation: any free block can serve any sequence.
///
/// # Examples
///
/// ```
/// use sp_kvcache::BlockAllocator;
///
/// let mut pool = BlockAllocator::new(4);
/// let a = pool.alloc().unwrap();
/// let b = pool.alloc().unwrap();
/// assert_ne!(a, b);
/// pool.free(a);
/// assert_eq!(pool.free_blocks(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    total: u32,
    free_list: Vec<BlockId>,
    allocated: Vec<bool>,
}

impl BlockAllocator {
    /// Creates a pool of `total` blocks.
    pub fn new(total: u32) -> BlockAllocator {
        BlockAllocator {
            total,
            free_list: (0..total).rev().map(BlockId).collect(),
            allocated: vec![false; total as usize],
        }
    }

    /// Allocates one block, or `None` if the pool is exhausted.
    pub fn alloc(&mut self) -> Option<BlockId> {
        let id = self.free_list.pop()?;
        self.allocated[id.0 as usize] = true;
        Some(id)
    }

    /// Returns `block` to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range or already free (double free).
    pub fn free(&mut self, block: BlockId) {
        let slot = self
            .allocated
            .get_mut(block.0 as usize)
            .unwrap_or_else(|| panic!("block {} out of range", block.0));
        assert!(*slot, "double free of block {}", block.0);
        *slot = false;
        self.free_list.push(block);
    }

    /// Total blocks in the pool.
    pub fn total_blocks(&self) -> u32 {
        self.total
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> u32 {
        self.free_list.len() as u32
    }

    /// Currently allocated blocks.
    pub fn used_blocks(&self) -> u32 {
        self.total - self.free_blocks()
    }

    /// Fraction of the pool in use (0 when the pool is empty).
    pub fn utilization(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            f64::from(self.used_blocks()) / f64::from(self.total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn exhaustion_returns_none() {
        let mut pool = BlockAllocator::new(2);
        assert!(pool.alloc().is_some());
        assert!(pool.alloc().is_some());
        assert!(pool.alloc().is_none());
    }

    #[test]
    fn freed_blocks_are_reusable() {
        let mut pool = BlockAllocator::new(1);
        let a = pool.alloc().unwrap();
        pool.free(a);
        let b = pool.alloc().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn allocations_are_unique() {
        let mut pool = BlockAllocator::new(64);
        let mut seen = HashSet::new();
        while let Some(b) = pool.alloc() {
            assert!(seen.insert(b), "duplicate allocation {b:?}");
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pool = BlockAllocator::new(2);
        let a = pool.alloc().unwrap();
        pool.free(a);
        pool.free(a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_free_panics() {
        let mut pool = BlockAllocator::new(2);
        pool.free(BlockId(5));
    }

    #[test]
    fn zero_capacity_pool_is_empty() {
        let mut pool = BlockAllocator::new(0);
        assert!(pool.alloc().is_none());
        assert_eq!(pool.utilization(), 0.0);
    }

    proptest! {
        #[test]
        fn alloc_free_conserves_accounting(ops in prop::collection::vec(any::<bool>(), 0..500)) {
            let mut pool = BlockAllocator::new(32);
            let mut held = Vec::new();
            for alloc in ops {
                if alloc {
                    if let Some(b) = pool.alloc() {
                        held.push(b);
                    }
                } else if let Some(b) = held.pop() {
                    pool.free(b);
                }
                prop_assert_eq!(pool.used_blocks() as usize, held.len());
                prop_assert_eq!(pool.free_blocks() + pool.used_blocks(), 32);
            }
        }
    }
}
