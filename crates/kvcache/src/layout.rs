//! KV-head sharding across an attention-parallel group.
//!
//! Both TP and SP parallelize attention *across heads* (head parallelism),
//! which is why their KV caches coincide — the invariance Shift Parallelism
//! exploits. This module answers: given `kv_heads` and an attention group
//! of `degree` GPUs, which heads (or replicas) does each GPU store, and how
//! many KV bytes per token does that cost?
//!
//! When `degree > kv_heads` the heads cannot be spread one-per-GPU; the
//! paper replicates KV heads via the all-to-all send buffers (§3.2.1) so
//! that e.g. Qwen-30B-A3B (4 KV heads) scales to 8 GPUs with each head
//! stored on 2 GPUs.

use sp_model::ModelConfig;
use std::fmt;

/// Error constructing a [`KvShardLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// `degree` was zero.
    ZeroDegree,
    /// The model has zero KV heads.
    ZeroKvHeads,
    /// Heads cannot be distributed evenly: neither `kv_heads % degree == 0`
    /// nor `degree % kv_heads == 0`.
    UnevenDistribution {
        /// KV heads in the model.
        kv_heads: u32,
        /// Requested parallel degree.
        degree: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::ZeroDegree => write!(f, "attention-parallel degree must be positive"),
            LayoutError::ZeroKvHeads => write!(f, "model must have at least one KV head"),
            LayoutError::UnevenDistribution { kv_heads, degree } => {
                write!(f, "cannot distribute {kv_heads} KV heads evenly across {degree} GPUs")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// How KV heads are placed on the GPUs of one attention-parallel group.
///
/// # Examples
///
/// ```
/// use sp_kvcache::KvShardLayout;
///
/// // Qwen-30B-A3B: 4 KV heads on 8 GPUs → each head replicated twice.
/// let l = KvShardLayout::plan(4, 8).unwrap();
/// assert_eq!(l.replication(), 2);
/// assert_eq!(l.heads_per_gpu(), 1);
/// assert_eq!(l.memory_overhead_factor(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvShardLayout {
    kv_heads: u32,
    degree: u32,
    heads_per_gpu: u32,
    replication: u32,
}

impl KvShardLayout {
    /// Plans the placement of `kv_heads` KV heads across `degree` GPUs.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if either count is zero or the distribution
    /// would be uneven (see module docs).
    pub fn plan(kv_heads: u32, degree: usize) -> Result<KvShardLayout, LayoutError> {
        if degree == 0 {
            return Err(LayoutError::ZeroDegree);
        }
        if kv_heads == 0 {
            return Err(LayoutError::ZeroKvHeads);
        }
        let degree_u = degree as u32;
        if kv_heads.is_multiple_of(degree_u) {
            Ok(KvShardLayout {
                kv_heads,
                degree: degree_u,
                heads_per_gpu: kv_heads / degree_u,
                replication: 1,
            })
        } else if degree_u.is_multiple_of(kv_heads) {
            Ok(KvShardLayout {
                kv_heads,
                degree: degree_u,
                heads_per_gpu: 1,
                replication: degree_u / kv_heads,
            })
        } else {
            Err(LayoutError::UnevenDistribution { kv_heads, degree })
        }
    }

    /// Plans placement for `model` across `degree` GPUs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KvShardLayout::plan`].
    pub fn for_model(model: &ModelConfig, degree: usize) -> Result<KvShardLayout, LayoutError> {
        KvShardLayout::plan(model.kv_heads, degree)
    }

    /// KV heads stored on each GPU (replicas count once).
    pub fn heads_per_gpu(&self) -> u32 {
        self.heads_per_gpu
    }

    /// How many GPUs hold a copy of each KV head.
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// The attention-parallel degree this layout was planned for.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The KV head count this layout was planned for.
    pub fn kv_heads(&self) -> u32 {
        self.kv_heads
    }

    /// Fraction of the model's per-token KV traffic each GPU carries:
    /// `heads_per_gpu / kv_heads`. 1/degree for even splits; with
    /// replication each GPU still reads one full head, so the fraction
    /// stops shrinking at `1 / kv_heads`.
    pub fn shard_fraction(&self) -> f64 {
        f64::from(self.heads_per_gpu) / f64::from(self.kv_heads)
    }

    /// KV head ids stored on GPU `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= degree`.
    pub fn heads_on_gpu(&self, rank: usize) -> Vec<u32> {
        assert!((rank as u32) < self.degree, "rank {rank} out of range");
        if self.replication == 1 {
            let start = rank as u32 * self.heads_per_gpu;
            (start..start + self.heads_per_gpu).collect()
        } else {
            // Replica r of head h lives on GPU h*replication + r.
            vec![rank as u32 / self.replication]
        }
    }

    /// Group-wide KV memory relative to storing each head once: `degree ×
    /// heads_per_gpu / kv_heads`. 1.0 without replication, `replication`
    /// with it.
    pub fn memory_overhead_factor(&self) -> f64 {
        f64::from(self.degree) * f64::from(self.heads_per_gpu) / f64::from(self.kv_heads)
    }

    /// Per-GPU KV bytes per cached token for `model` under this layout.
    pub fn per_gpu_kv_bytes_per_token(&self, model: &ModelConfig) -> u64 {
        model.kv_bytes_per_token() * u64::from(self.heads_per_gpu) / u64::from(model.kv_heads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sp_model::presets;
    use std::collections::HashMap;

    #[test]
    fn llama_70b_on_8_gpus_has_one_head_each() {
        let l = KvShardLayout::plan(8, 8).unwrap();
        assert_eq!(l.heads_per_gpu(), 1);
        assert_eq!(l.replication(), 1);
        assert_eq!(l.memory_overhead_factor(), 1.0);
    }

    #[test]
    fn qwen_a3b_on_8_gpus_replicates_twice() {
        let l = KvShardLayout::for_model(&presets::qwen_30b_a3b(), 8).unwrap();
        assert_eq!(l.replication(), 2);
        assert_eq!(l.memory_overhead_factor(), 2.0);
    }

    #[test]
    fn degree_below_heads_packs_heads() {
        let l = KvShardLayout::plan(8, 2).unwrap();
        assert_eq!(l.heads_per_gpu(), 4);
        assert_eq!(l.heads_on_gpu(0), vec![0, 1, 2, 3]);
        assert_eq!(l.heads_on_gpu(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn replicated_layout_places_replicas_adjacent() {
        let l = KvShardLayout::plan(4, 8).unwrap();
        assert_eq!(l.heads_on_gpu(0), vec![0]);
        assert_eq!(l.heads_on_gpu(1), vec![0]);
        assert_eq!(l.heads_on_gpu(6), vec![3]);
        assert_eq!(l.heads_on_gpu(7), vec![3]);
    }

    #[test]
    fn shard_fraction_floors_at_one_head() {
        // Even split: each of 8 GPUs reads 1/8 of the heads.
        assert_eq!(KvShardLayout::plan(8, 8).unwrap().shard_fraction(), 0.125);
        // Replication: the fraction stops shrinking at one full head.
        assert_eq!(KvShardLayout::plan(4, 8).unwrap().shard_fraction(), 0.25);
        assert_eq!(KvShardLayout::plan(4, 4).unwrap().shard_fraction(), 0.25);
        assert_eq!(KvShardLayout::plan(4, 8).unwrap().kv_heads(), 4);
    }

    #[test]
    fn uneven_distribution_rejected() {
        assert_eq!(
            KvShardLayout::plan(8, 3).unwrap_err(),
            LayoutError::UnevenDistribution { kv_heads: 8, degree: 3 }
        );
    }

    #[test]
    fn per_gpu_bytes_split_evenly_without_replication() {
        let m = presets::llama_70b();
        let l = KvShardLayout::for_model(&m, 8).unwrap();
        assert_eq!(l.per_gpu_kv_bytes_per_token(&m) * 8, m.kv_bytes_per_token());
    }

    #[test]
    fn replication_does_not_shrink_per_gpu_bytes() {
        let m = presets::qwen_30b_a3b();
        let four = KvShardLayout::for_model(&m, 4).unwrap();
        let eight = KvShardLayout::for_model(&m, 8).unwrap();
        assert_eq!(four.per_gpu_kv_bytes_per_token(&m), eight.per_gpu_kv_bytes_per_token(&m));
    }

    proptest! {
        #[test]
        fn every_head_is_stored_replication_times(
            kv_heads_pow in 0u32..5, degree_pow in 0u32..5,
        ) {
            let kv_heads = 1u32 << kv_heads_pow;
            let degree = 1usize << degree_pow;
            let l = KvShardLayout::plan(kv_heads, degree).unwrap();
            let mut copies: HashMap<u32, u32> = HashMap::new();
            for rank in 0..degree {
                for h in l.heads_on_gpu(rank) {
                    prop_assert!(h < kv_heads);
                    *copies.entry(h).or_default() += 1;
                }
            }
            prop_assert_eq!(copies.len() as u32, kv_heads);
            for (_, c) in copies {
                prop_assert_eq!(c, l.replication());
            }
        }

        #[test]
        fn overhead_factor_matches_replication(
            kv_heads_pow in 0u32..5, degree_pow in 0u32..5,
        ) {
            let l = KvShardLayout::plan(1 << kv_heads_pow, 1 << degree_pow).unwrap();
            prop_assert!(
                (l.memory_overhead_factor() - f64::from(l.replication())).abs() < 1e-12
            );
        }
    }
}
