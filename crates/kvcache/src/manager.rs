//! Per-sequence KV accounting with admission control.

use crate::allocator::{BlockAllocator, BlockId};
use std::collections::HashMap;

/// Tracks which KV blocks each live sequence holds and admits new work only
/// if it fits.
///
/// Capacity is expressed in *tokens* (the deployment planner converts the
/// per-GPU HBM budget into tokens via the model's per-token KV bytes and
/// the shard layout). The manager hands out whole blocks, so a sequence of
/// `t` tokens consumes `ceil(t / block_tokens)` blocks — the same internal
/// fragmentation real PagedAttention pays.
///
/// # Examples
///
/// ```
/// use sp_kvcache::KvCacheManager;
///
/// let mut kv = KvCacheManager::new(64, 16);
/// assert!(kv.try_reserve(7, 40));       // 3 blocks
/// assert!(!kv.try_reserve(8, 40));      // only 1 block left
/// assert!(kv.try_reserve(8, 10));       // fits in the last block
/// ```
#[derive(Debug, Clone)]
pub struct KvCacheManager {
    block_tokens: u32,
    pool: BlockAllocator,
    seqs: HashMap<u64, SeqAlloc>,
    /// Shared prefix allocations: one growing sequence per group,
    /// attached to by many requests (multi-turn sessions). Stored under
    /// a separate id namespace so they never collide with request ids.
    groups: HashMap<u64, u64>,
    used_tokens: u64,
    peak_used_tokens: u64,
}

#[derive(Debug, Clone)]
struct SeqAlloc {
    tokens: u64,
    blocks: Vec<BlockId>,
}

impl KvCacheManager {
    /// Creates a manager holding up to `capacity_tokens` tokens in blocks of
    /// `block_tokens`.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    pub fn new(capacity_tokens: u64, block_tokens: u32) -> KvCacheManager {
        assert!(block_tokens > 0, "block size must be positive");
        let blocks = (capacity_tokens / u64::from(block_tokens)) as u32;
        KvCacheManager {
            block_tokens,
            pool: BlockAllocator::new(blocks),
            seqs: HashMap::new(),
            groups: HashMap::new(),
            used_tokens: 0,
            peak_used_tokens: 0,
        }
    }

    /// Grows the shared prefix allocation of `group` to at least
    /// `watermark` tokens (a no-op if already that large). Returns false
    /// (and changes nothing) if the pool cannot supply the blocks.
    ///
    /// Group allocations are ref-free high-water marks: a session's
    /// prefix only grows; [`KvCacheManager::release_group`] frees it when
    /// the session ends.
    pub fn try_extend_group(&mut self, group: u64, watermark: u64) -> bool {
        let current = self.groups.get(&group).copied().unwrap_or(0);
        if watermark <= current {
            return true;
        }
        let seq_key = Self::group_key(group);
        if !self.try_reserve(seq_key, watermark - current) {
            return false;
        }
        self.groups.insert(group, watermark);
        true
    }

    /// Tokens held by the shared prefix of `group` (0 if absent).
    pub fn group_tokens(&self, group: u64) -> u64 {
        self.groups.get(&group).copied().unwrap_or(0)
    }

    /// Shrinks the shared prefix of `group` back to `watermark` tokens,
    /// freeing whole blocks past it — the admission-failure undo for
    /// [`KvCacheManager::try_extend_group`]. A watermark of zero drops the
    /// group entirely. No-op if the group is absent or already at or
    /// below the watermark.
    pub fn shrink_group(&mut self, group: u64, watermark: u64) {
        let Some(&current) = self.groups.get(&group) else { return };
        if watermark >= current {
            return;
        }
        if watermark == 0 {
            self.release_group(group);
            return;
        }
        let alloc = self
            .seqs
            .get_mut(&Self::group_key(group))
            .expect("group watermark implies a live allocation");
        let keep_blocks = watermark.div_ceil(u64::from(self.block_tokens)) as usize;
        while alloc.blocks.len() > keep_blocks {
            let block = alloc.blocks.pop().expect("length checked");
            self.pool.free(block);
        }
        self.used_tokens -= alloc.tokens - watermark;
        alloc.tokens = watermark;
        self.groups.insert(group, watermark);
    }

    /// Frees a session's shared prefix. No-op if absent.
    pub fn release_group(&mut self, group: u64) {
        if self.groups.remove(&group).is_some() {
            self.release(Self::group_key(group));
        }
    }

    fn group_key(group: u64) -> u64 {
        // Request ids are trace indices (small); fold groups into the top
        // half of the id space.
        group | (1 << 63)
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u32 {
        self.block_tokens
    }

    /// Usable capacity in tokens (whole blocks only).
    pub fn capacity_tokens(&self) -> u64 {
        u64::from(self.pool.total_blocks()) * u64::from(self.block_tokens)
    }

    /// Tokens currently cached across all sequences.
    pub fn used_tokens(&self) -> u64 {
        self.used_tokens
    }

    /// High-water mark of cached tokens.
    pub fn peak_used_tokens(&self) -> u64 {
        self.peak_used_tokens
    }

    /// Free capacity in tokens, accounting for partially-filled tail blocks
    /// pessimistically (free blocks × block size).
    pub fn free_tokens(&self) -> u64 {
        u64::from(self.pool.free_blocks()) * u64::from(self.block_tokens)
    }

    /// Fraction of blocks in use.
    pub fn utilization(&self) -> f64 {
        self.pool.utilization()
    }

    /// Number of live sequences.
    pub fn live_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// True if appending `tokens` to sequence `seq` (creating it if absent)
    /// would succeed without evicting anything.
    pub fn can_reserve(&self, seq: u64, tokens: u64) -> bool {
        let have = self.seqs.get(&seq);
        let current = have.map_or(0, |s| s.tokens);
        let current_blocks = have.map_or(0, |s| s.blocks.len() as u64);
        let needed_blocks = (current + tokens).div_ceil(u64::from(self.block_tokens));
        needed_blocks.saturating_sub(current_blocks) <= u64::from(self.pool.free_blocks())
    }

    /// Appends `tokens` to sequence `seq`, creating it if absent. Returns
    /// false (and changes nothing) if the pool cannot supply the blocks.
    pub fn try_reserve(&mut self, seq: u64, tokens: u64) -> bool {
        if !self.can_reserve(seq, tokens) {
            return false;
        }
        let entry =
            self.seqs.entry(seq).or_insert_with(|| SeqAlloc { tokens: 0, blocks: Vec::new() });
        let needed_blocks = (entry.tokens + tokens).div_ceil(u64::from(self.block_tokens)) as usize;
        while entry.blocks.len() < needed_blocks {
            let block = self.pool.alloc().expect("can_reserve guaranteed capacity");
            entry.blocks.push(block);
        }
        entry.tokens += tokens;
        self.used_tokens += tokens;
        self.peak_used_tokens = self.peak_used_tokens.max(self.used_tokens);
        true
    }

    /// Tokens held by sequence `seq`, 0 if absent.
    pub fn sequence_tokens(&self, seq: u64) -> u64 {
        self.seqs.get(&seq).map_or(0, |s| s.tokens)
    }

    /// Releases all blocks of sequence `seq`. Releasing an absent sequence
    /// is a no-op (idempotent teardown).
    pub fn release(&mut self, seq: u64) {
        if let Some(alloc) = self.seqs.remove(&seq) {
            self.used_tokens -= alloc.tokens;
            for b in alloc.blocks {
                self.pool.free(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reserve_rounds_up_to_blocks() {
        let mut kv = KvCacheManager::new(64, 16);
        assert!(kv.try_reserve(1, 17)); // 2 blocks
        assert_eq!(kv.free_tokens(), 32);
        assert_eq!(kv.sequence_tokens(1), 17);
    }

    #[test]
    fn incremental_appends_fill_tail_block() {
        let mut kv = KvCacheManager::new(32, 16);
        for _ in 0..16 {
            assert!(kv.try_reserve(1, 1));
        }
        assert_eq!(kv.free_tokens(), 16); // exactly one block used
    }

    #[test]
    fn rejected_reserve_changes_nothing() {
        let mut kv = KvCacheManager::new(16, 16);
        assert!(kv.try_reserve(1, 10));
        let before_used = kv.used_tokens();
        assert!(!kv.try_reserve(2, 100));
        assert_eq!(kv.used_tokens(), before_used);
        assert_eq!(kv.sequence_tokens(2), 0);
    }

    #[test]
    fn release_returns_all_blocks() {
        let mut kv = KvCacheManager::new(64, 16);
        assert!(kv.try_reserve(1, 50));
        kv.release(1);
        assert_eq!(kv.used_tokens(), 0);
        assert_eq!(kv.free_tokens(), 64);
        assert_eq!(kv.live_sequences(), 0);
    }

    #[test]
    fn release_absent_sequence_is_noop() {
        let mut kv = KvCacheManager::new(64, 16);
        kv.release(42);
        assert_eq!(kv.free_tokens(), 64);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut kv = KvCacheManager::new(64, 16);
        kv.try_reserve(1, 40);
        kv.release(1);
        kv.try_reserve(2, 10);
        assert_eq!(kv.peak_used_tokens(), 40);
    }

    #[test]
    fn group_extends_monotonically_and_shares() {
        let mut kv = KvCacheManager::new(160, 16);
        assert!(kv.try_extend_group(1, 50));
        assert_eq!(kv.group_tokens(1), 50);
        let used_after_first = kv.used_tokens();
        // Second turn with a larger watermark only pays the delta.
        assert!(kv.try_extend_group(1, 80));
        assert_eq!(kv.used_tokens(), used_after_first + 30);
        // Smaller watermark is free.
        assert!(kv.try_extend_group(1, 10));
        assert_eq!(kv.group_tokens(1), 80);
        kv.release_group(1);
        assert_eq!(kv.used_tokens(), 0);
        assert_eq!(kv.group_tokens(1), 0);
    }

    #[test]
    fn group_extension_respects_capacity() {
        let mut kv = KvCacheManager::new(64, 16);
        assert!(kv.try_extend_group(7, 48));
        assert!(!kv.try_extend_group(7, 200));
        assert_eq!(kv.group_tokens(7), 48, "failed extension must not corrupt");
    }

    #[test]
    fn groups_do_not_collide_with_request_ids() {
        let mut kv = KvCacheManager::new(160, 16);
        assert!(kv.try_reserve(1, 32)); // request id 1
        assert!(kv.try_extend_group(1, 32)); // group id 1
        assert_eq!(kv.sequence_tokens(1), 32);
        assert_eq!(kv.group_tokens(1), 32);
        kv.release(1);
        assert_eq!(kv.group_tokens(1), 32, "request release must not free the group");
    }

    #[test]
    fn shrink_group_rolls_back_an_extension() {
        let mut kv = KvCacheManager::new(160, 16);
        assert!(kv.try_extend_group(3, 48));
        let used = kv.used_tokens();
        assert!(kv.try_extend_group(3, 100));
        kv.shrink_group(3, 48);
        assert_eq!(kv.group_tokens(3), 48);
        assert_eq!(kv.used_tokens(), used);
        // Shrinking to zero drops the group entirely.
        kv.shrink_group(3, 0);
        assert_eq!(kv.group_tokens(3), 0);
        assert_eq!(kv.used_tokens(), 0);
        assert_eq!(kv.free_tokens(), 160);
    }

    #[test]
    fn shrink_group_is_noop_when_at_or_below_watermark() {
        let mut kv = KvCacheManager::new(160, 16);
        kv.shrink_group(9, 10); // absent group
        assert_eq!(kv.used_tokens(), 0);
        assert!(kv.try_extend_group(9, 32));
        kv.shrink_group(9, 64); // larger watermark: no-op
        assert_eq!(kv.group_tokens(9), 32);
        assert_eq!(kv.free_tokens(), 128);
    }

    #[test]
    fn capacity_truncates_partial_blocks() {
        let kv = KvCacheManager::new(100, 16);
        assert_eq!(kv.capacity_tokens(), 96);
    }

    proptest! {
        #[test]
        fn accounting_invariants_hold(
            ops in prop::collection::vec((0u64..8, 1u64..40, any::<bool>()), 0..300)
        ) {
            let mut kv = KvCacheManager::new(512, 16);
            let mut shadow: HashMap<u64, u64> = HashMap::new();
            for (seq, tokens, is_reserve) in ops {
                if is_reserve {
                    if kv.try_reserve(seq, tokens) {
                        *shadow.entry(seq).or_default() += tokens;
                    }
                } else {
                    kv.release(seq);
                    shadow.remove(&seq);
                }
                let expected: u64 = shadow.values().sum();
                prop_assert_eq!(kv.used_tokens(), expected);
                prop_assert!(kv.used_tokens() <= kv.capacity_tokens());
                for (&s, &t) in &shadow {
                    prop_assert_eq!(kv.sequence_tokens(s), t);
                }
            }
        }

        #[test]
        fn can_reserve_agrees_with_try_reserve(
            seed in prop::collection::vec((0u64..4, 1u64..100), 0..100)
        ) {
            let mut kv = KvCacheManager::new(256, 16);
            for (seq, tokens) in seed {
                let predicted = kv.can_reserve(seq, tokens);
                let actual = kv.try_reserve(seq, tokens);
                prop_assert_eq!(predicted, actual);
            }
        }
    }
}
