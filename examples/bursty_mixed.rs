//! Mixed-QoS scenario: interactive and batch traffic sharing one
//! deployment under bursty arrivals (Figure 2's production pattern).
//!
//! Shows per-class latency: interactive requests should stay fast even
//! while batch bursts are being absorbed.
//!
//! ```text
//! cargo run --release --example bursty_mixed
//! ```

use shift_parallelism::prelude::*;
use std::collections::HashMap;

fn main() {
    let trace = BurstyConfig::default().generate();
    let class_of: HashMap<u64, RequestClass> =
        trace.requests().iter().map(|r| (r.id, r.class)).collect();
    println!(
        "Bursty mixed trace: {} requests ({} interactive / {} batch)\n",
        trace.len(),
        trace.requests().iter().filter(|r| r.class == RequestClass::Interactive).count(),
        trace.requests().iter().filter(|r| r.class == RequestClass::Batch).count(),
    );

    for (name, kind) in [
        ("TP", DeploymentKind::TensorParallel),
        ("DP", DeploymentKind::DataParallel),
        ("Shift", DeploymentKind::Shift),
    ] {
        let mut deployment = Deployment::builder(NodeSpec::p5en_48xlarge(), presets::llama_70b())
            .kind(kind)
            .build()
            .expect("deployable");
        let report = deployment.run(&trace);

        let mut by_class: HashMap<RequestClass, Quantiles> = HashMap::new();
        for rec in report.records() {
            by_class.entry(class_of[&rec.request_id]).or_default().record(rec.ttft().as_secs());
        }
        let inter = by_class
            .get_mut(&RequestClass::Interactive)
            .and_then(|q| q.median())
            .unwrap_or(f64::NAN);
        let batch =
            by_class.get_mut(&RequestClass::Batch).and_then(|q| q.median()).unwrap_or(f64::NAN);
        println!(
            "{name:6} median TTFT — interactive {:8.0} ms | batch {:8.0} ms | \
             throughput {:6.0} tok/s",
            inter * 1e3,
            batch * 1e3,
            report.combined_throughput()
        );
    }
    println!(
        "\nExpected: with Shift Parallelism, interactive requests keep a low TTFT even\n\
         during bursts, because bursts drain ~1.5x faster than under TP (Table 5)."
    );
}
