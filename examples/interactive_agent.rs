//! Interactive agent scenario: a coding agent issuing a closed loop of
//! requests (the paper's motivating low-latency workload, §2.1).
//!
//! Each turn sends the growing conversation context and waits for the
//! full answer before the next turn, so the *completion time* of every
//! turn lands on the critical path of the whole session.
//!
//! ```text
//! cargo run --release --example interactive_agent
//! ```

use shift_parallelism::prelude::*;

/// One agent session: `turns` requests whose contexts grow as tool output
/// accumulates, issued back-to-back (each arrives when the previous one
/// finished).
fn run_session(kind: DeploymentKind, turns: usize) -> f64 {
    let node = NodeSpec::p5en_48xlarge();
    let mut deployment =
        Deployment::builder(node, presets::llama_70b()).kind(kind).build().expect("deployable");

    let mut session_time = 0.0;
    let mut context: u32 = 8_000; // initial repo context
    for _ in 0..turns {
        // A closed loop: the next request departs when this one completes,
        // so running turns one-at-a-time is faithful.
        let mut report = deployment.run(&synthetic::single(context, 150));
        session_time += report.metrics_mut().completion().median().unwrap();
        context += 6_000; // tool output + generated code feed the next turn
    }
    session_time
}

fn main() {
    let turns = 12;
    println!("Coding-agent session: {turns} turns, growing context, Llama-70B\n");
    let mut rows = Vec::new();
    for (name, kind) in [
        ("TP (latency-opt baseline)", DeploymentKind::TensorParallel),
        ("DP (throughput-opt baseline)", DeploymentKind::DataParallel),
        ("Shift Parallelism", DeploymentKind::Shift),
    ] {
        let total = run_session(kind, turns);
        rows.push((name, total));
        println!("{name:32} session wall-clock {total:6.1} s");
    }
    let tp = rows[0].1;
    let shift = rows[2].1;
    println!(
        "\nShift Parallelism finishes the agent session {:.2}x faster than TP\n\
         (every turn enjoys SP prefill for the long context and TP decode).",
        tp / shift
    );
}
