//! Quickstart: deploy Shift Parallelism and serve one request.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shift_parallelism::prelude::*;

fn main() {
    // An 8xH200 node, as in the paper's evaluation.
    let node = NodeSpec::p5en_48xlarge();

    // Llama-3.3-70B in FP8 (Table 4).
    let model = presets::llama_70b();

    // Build a Shift Parallelism deployment. The base (SP, TP) config is
    // chosen automatically per §3.2.2; the invariance certificate and
    // memory plan are validated under the hood.
    let mut deployment = Deployment::builder(node, model)
        .kind(DeploymentKind::Shift)
        .build()
        .expect("Llama-70B fits an 8xH200 node");

    println!("KV cache capacity: {} tokens", deployment.kv_capacity_tokens());

    // A single interactive request: 4k-token prompt, 128-token answer.
    let trace = synthetic::single(4096, 128);
    let mut report = deployment.run(&trace);

    let m = report.metrics_mut();
    println!("TTFT:            {:.1} ms", m.ttft().median().unwrap() * 1e3);
    println!("TPOT:            {:.2} ms", m.tpot().median().unwrap() * 1e3);
    println!("completion time: {:.2} s", m.completion().median().unwrap());

    let (base, shift, switches) = deployment.shift_stats().expect("shift deployment");
    println!(
        "policy: {base} base-config iterations, {shift} shift-config iterations, \
         {switches} switches"
    );
}
