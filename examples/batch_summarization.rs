//! Batch scenario: summarizing a corpus of documents (the paper's
//! throughput-sensitive workload, §2.1) — thousands of long-input /
//! short-output requests submitted at once, where combined throughput
//! determines job completion time and cost.
//!
//! ```text
//! cargo run --release --example batch_summarization
//! ```

use shift_parallelism::prelude::*;

/// On-demand p5en.48xlarge price, $/hour (for the cost-per-job framing).
const NODE_DOLLARS_PER_HOUR: f64 = 64.0;

fn main() {
    let node = NodeSpec::p5en_48xlarge();
    let docs = 1_000;
    let doc_tokens = 6_000;
    let summary_tokens = 200;
    let trace = synthetic::uniform_batch(docs, doc_tokens, summary_tokens);
    println!(
        "Summarization job: {docs} documents x {doc_tokens} tokens -> {summary_tokens}-token \
         summaries ({:.1}M tokens total)\n",
        trace.total_tokens() as f64 / 1e6
    );

    let mut best: Option<(&str, f64)> = None;
    for (name, kind) in [
        ("TP", DeploymentKind::TensorParallel),
        ("DP", DeploymentKind::DataParallel),
        ("SP", DeploymentKind::SequenceParallel),
        ("Shift", DeploymentKind::Shift),
    ] {
        let mut deployment =
            Deployment::builder(node, presets::llama_70b()).kind(kind).build().expect("deployable");
        let report = deployment.run(&trace);
        let makespan = report.makespan().as_secs();
        let tput = report.combined_throughput();
        let dollars = makespan / 3600.0 * NODE_DOLLARS_PER_HOUR;
        println!(
            "{name:6} job time {makespan:7.1} s   throughput {tput:7.0} tok/s   \
             cost ${dollars:.2}"
        );
        if best.is_none() || makespan < best.unwrap().1 {
            best = Some((name, makespan));
        }
    }
    let (winner, _) = best.unwrap();
    println!(
        "\nFastest: {winner}. Shift Parallelism runs batch jobs at near-DP cost while\n\
         the same deployment also serves interactive traffic at TP-grade latency\n\
         (see examples/interactive_agent.rs) — no second cluster needed."
    );
}
