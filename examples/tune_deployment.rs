//! Auto-tune a shift deployment for *your* workload: profile a trace,
//! grid-search the knobs, and report the recommendation.
//!
//! ```text
//! cargo run --release --example tune_deployment
//! ```

use shift_parallelism::core::tuner::{Objective, Tuner};
use shift_parallelism::prelude::*;
use shift_parallelism::workload::analysis::WorkloadProfile;

fn main() {
    // Pretend this is a sample of your production traffic (swap in
    // `Trace::load("my_trace.jsonl")` for a real one).
    let sample = ProductionMixConfig::default().generate();

    let profile = WorkloadProfile::measure(&sample, Dur::from_secs(15.0));
    println!(
        "Workload sample: {} requests | class {:?} | {:.1} req/s | burstiness {:.1} | \
         {:.0} in / {:.0} out tokens | {:.0} tok/s demand\n",
        sample.len(),
        profile.classify(),
        profile.arrival_rate,
        profile.burstiness_ratio,
        profile.mean_input,
        profile.mean_output,
        profile.demand_tokens_per_sec,
    );

    let tuner = Tuner::new(NodeSpec::p5en_48xlarge(), presets::llama_70b())
        .thresholds(vec![64, 256, 1024, 4096])
        .prefill_caps(vec![None, Some(2048), Some(1024)]);

    println!(
        "Grid-searching {} base configs x 4 thresholds x 3 caps...",
        tuner.base_candidates().len()
    );
    let sweep = tuner
        .sweep(&sample, Objective::Goodput(SloTarget::interactive()))
        .expect("viable configurations exist");

    println!("\nTop 5 candidates by SLO goodput:");
    for c in sweep.iter().take(5) {
        println!("  {} -> {:.0} SLO-tokens/s", c, c.score.abs());
    }
    let best = &sweep[0];
    println!(
        "\nRecommended deployment:\n  Deployment::builder(node, model)\n    \
         .kind(DeploymentKind::ShiftWithBase {{ base: {}, threshold: {} }}){}\n    \
         .build()",
        best.base,
        best.threshold,
        best.max_prefill_tokens
            .map(|c| format!("\n    .max_prefill_tokens({c})"))
            .unwrap_or_default(),
    );
}
