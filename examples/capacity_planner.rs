//! Capacity planner: for each Table 4 model, enumerate `(SP, TP)` base
//! configurations, check memory fit, KV capacity, and KV-cache
//! invariance, and report the recommended Shift Parallelism deployment
//! (the §3.2.2 deployment rule, automated).
//!
//! ```text
//! cargo run --release --example capacity_planner
//! ```

use shift_parallelism::prelude::*;

fn main() {
    let node = NodeSpec::p5en_48xlarge();
    println!(
        "Node: {} GPUs x {:.0} GB, NVSwitch {:.0} GB/s\n",
        node.gpu_count,
        node.gpu.mem_bytes as f64 / 1e9,
        node.interconnect.link_bw / 1e9
    );

    for model in presets::all_table4() {
        println!(
            "### {} — {:.0} GB FP8 weights, {} KV heads",
            model.name,
            model.weight_bytes() as f64 / 1e9,
            model.kv_heads
        );
        println!(
            "{:>10}  {:>12} {:>14} {:>12} {:>10}",
            "base", "w/GPU (GB)", "KV cap (tok)", "shift ovh", "invariant"
        );
        let mut tp = 1;
        while tp <= node.gpu_count {
            let base = ParallelConfig::new(node.gpu_count / tp, tp);
            let weights = ShiftWeightPlan::new(&model, base, WeightStrategy::SeparateModels);
            let plan = MemoryPlan::plan_with_extra(
                &node,
                &model,
                &base,
                weights.shift_extra_bytes_per_gpu(),
                0.9,
            );
            let invariant = InvarianceCertificate::verify(&model, base).is_ok();
            match plan {
                Ok(p) => println!(
                    "{:>10}  {:>12.1} {:>14} {:>11.1}% {:>10}",
                    base.to_string(),
                    p.weight_bytes_per_gpu as f64 / 1e9,
                    if p.fits { p.kv_capacity_tokens.to_string() } else { "OOM".into() },
                    weights.overhead_fraction() * 100.0,
                    invariant
                ),
                Err(e) => println!("{:>10}  invalid layout: {e}", base.to_string()),
            }
            tp *= 2;
        }
        match Deployment::auto_base(&node, &model, 0.9) {
            Ok(base) => println!("--> recommended base config: {base}\n"),
            Err(e) => println!("--> no viable base config: {e}\n"),
        }
    }
}
