//! Numerical demonstration of KV-cache invariance — the mechanism that
//! makes Shift Parallelism possible, executed on real (toy-sized) f32
//! tensors rather than cost models.
//!
//! ```text
//! cargo run --release --example numerical_invariance
//! ```

use shift_parallelism::numeric::{combined, shift, sp, tensor::Matrix, tp, ToyTransformer};

fn main() {
    // A 2-layer toy transformer: d=16, 4 query heads, 2 KV heads (GQA).
    let model = ToyTransformer::seeded(2, 16, 4, 2, 4, 32, 7);
    let prompt = Matrix::random(8, 16, 42);
    let decode_tokens: Vec<Matrix> = (0..3).map(|i| Matrix::random(1, 16, 100 + i)).collect();

    println!("Toy model: 2 layers, d=16, 4 Q heads / 2 KV heads (GQA), 4 ranks\n");

    // 1. All parallelisms compute the same prefill.
    let (serial, serial_cache) = model.forward(&prompt);
    let (tp_out, _) = tp::forward(&model, &prompt, 4);
    let (sp_out, sp_shards) = sp::forward(&model, &prompt, 4);
    let (mixed_out, _) = combined::forward(&model, &prompt, 2, 2);
    println!("prefill max |Δ| vs serial:");
    println!("  TP=4          {:.2e}", tp_out.max_abs_diff(&serial));
    println!("  SP=4          {:.2e}", sp_out.max_abs_diff(&serial));
    println!("  (SP=2, TP=2)  {:.2e}", mixed_out.max_abs_diff(&serial));

    // 2. SP and TP leave IDENTICAL per-rank KV shards.
    let (_, tp_shards) = tp::forward(&model, &prompt, 4);
    let max_kv_diff = sp_shards
        .iter()
        .zip(&tp_shards)
        .flat_map(|(s, t)| s.layers.iter().zip(&t.layers))
        .map(|((ks, _), (kt, _))| ks.max_abs_diff(kt))
        .fold(0.0f32, f32::max);
    println!("\nKV-cache invariance: max |Δ| between SP and TP shards = {max_kv_diff:.2e}");

    // 3. The full shift run: prefill in (SP=2, TP=2), decode in TP=4 on
    //    the SAME cache — outputs match the serial decode.
    let (_, serial_decode, _) = shift::serial_run(&model, &prompt, &decode_tokens);
    let (_, shift_decode, shards) =
        shift::prefill_base_decode_shift(&model, &prompt, 2, 2, &decode_tokens);
    println!("\nshift run (base (2,2) prefill → TP=4 decode), per-step max |Δ| vs serial:");
    for (i, (got, want)) in shift_decode.iter().zip(&serial_decode).enumerate() {
        println!("  decode step {i}: {:.2e}", got.max_abs_diff(want));
    }

    // 4. The §3.3.1 interleaving is real: mixed-base head ownership.
    let owned: Vec<Vec<usize>> = shards.iter().map(|s| s.q_heads.clone()).collect();
    println!(
        "\nhead ownership under the (SP=2, TP=2) base: {owned:?}\n\
         (interleaved (0,2,1,3) — the Figure 6 ordering the shift model must follow)"
    );
    let _ = serial_cache;
    println!("\nAll differences are at f32 round-off: the switch is numerically exact.");
}
