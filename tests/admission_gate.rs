//! Regression and equivalence tests for the KV-blocked admission gate.
//!
//! The gate (`Engine::arm_admission_gate` / `gate_blocks_admission`)
//! lets the scheduler skip wait-queue admission scans while the head
//! candidate's KV reservation provably cannot succeed. It is an
//! *optimization*, never a behavior change: with
//! `set_reference_mode(true)` the engine runs the pre-gate linear
//! rescan on every iteration, and the gated engine must reproduce that
//! report bit-for-bit. The deterministic tests here pin the two disarm
//! paths that are easiest to get wrong — KV freed by an SLO batch-shed
//! and by a decode-append preemption must unblock admission on the
//! *same iteration* as a full rescan would, not an iteration late — and
//! the property test sweeps randomized KV-pressure traces over both
//! admission modes.

use proptest::prelude::*;
use shift_parallelism::prelude::*;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};

/// A KV-bound engine in the regime the gate targets: tight cache, a
/// small token budget (so big prefills chunk across iterations and stay
/// sheddable for a while), SLO-aware EDF admission, and timeline
/// capture so the fingerprint pins every iteration. `reference` selects
/// the pre-gate linear-rescan twin.
fn gate_engine(kv: u64, admission: AdmissionMode, reference: bool) -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    let mut e = Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig {
            kv_capacity_tokens: kv,
            max_batched_tokens: 2048,
            class_slo: Some(ClassSlo::default()),
            admission,
            record_timeline: true,
            ..EngineConfig::default()
        },
    );
    e.set_reference_mode(reference);
    e
}

/// Everything observable about a report, in owned, bit-exact form (the
/// same surface `tests/fastforward.rs` compares): records, decisions,
/// timeline, throughput bins, and the shed/preemption/deferral counters
/// the gate's disarm paths feed.
fn deep_fingerprint(r: &EngineReport) -> (String, String, Vec<(u64, u64)>, u64) {
    let m = r.metrics();
    let bins: Vec<(u64, u64)> =
        m.throughput().totals().map(|(t, w)| (t.as_secs().to_bits(), w.to_bits())).collect();
    let mut usage: Vec<(String, u64)> =
        r.config_usage().iter().map(|(c, n)| (format!("{c:?}"), *n)).collect();
    usage.sort();
    let head = format!(
        "records={:?}|decisions={:?}|rejected={:?}|failed={:?}|timeline={:?}",
        r.records(),
        r.routing_decisions(),
        r.rejected(),
        r.failed(),
        r.timeline(),
    );
    let aggregates = format!(
        "iters={}|usage={usage:?}|makespan={}|max_iter={}|peak_kv={}|completed={}|tokens={}|last={}|preempt={}|sheds={}|defer={}",
        r.iterations(),
        r.makespan().as_secs().to_bits(),
        r.max_iteration_time().as_secs().to_bits(),
        r.peak_kv_utilization().to_bits(),
        m.completed(),
        m.total_tokens(),
        m.last_finish().as_secs().to_bits(),
        r.preemptions(),
        r.batch_sheds(),
        r.batch_deferrals(),
    );
    (head, aggregates, bins, r.iterations())
}

fn request(id: u64, at: f64, input: u32, output: u32, class: RequestClass) -> Request {
    Request {
        id,
        arrival: SimTime::from_secs(at),
        input_tokens: input,
        output_tokens: output,
        class,
        cached_prefix: 0,
        prefix_group: None,
    }
}

/// Shed-freed KV must unblock the gate on the same iteration as a full
/// rescan. Two big batch prefills fill the cache and a third parks the
/// gate; an interactive request then becomes the EDF candidate, goes
/// TTFT-at-risk mid-prefill, and the SLO shed path evicts a batch
/// prefill to admit it. A gate that missed the shed-path disarm (or the
/// freed-KV headroom check afterwards) would hold admission closed past
/// the shed opportunity and diverge from the linear-rescan twin.
#[test]
fn shed_freed_kv_unblocks_gate_like_full_rescan() {
    const KV: u64 = 24_576;
    let trace = Trace::with_ids(vec![
        request(0, 0.0, 11_000, 500, RequestClass::Batch),
        request(1, 0.0, 11_000, 500, RequestClass::Batch),
        request(2, 0.01, 11_000, 500, RequestClass::Batch),
        request(3, 0.05, 3_000, 64, RequestClass::Interactive),
    ]);
    let gated_report = gate_engine(KV, AdmissionMode::ReserveFull, false).run(&trace);
    assert!(
        gated_report.batch_sheds() > 0,
        "trace must exercise the SLO shed path (got {} sheds)",
        gated_report.batch_sheds()
    );
    assert_eq!(gated_report.records().len(), 4, "every request must eventually complete");
    let reference = gate_engine(KV, AdmissionMode::ReserveFull, true).run(&trace);
    assert_eq!(
        deep_fingerprint(&gated_report),
        deep_fingerprint(&reference),
        "gated admission diverged from the linear rescan across a batch shed"
    );
}

/// Preemption-freed KV (and the queue mutation it implies) must unblock
/// the gate like a full rescan. Under `PreemptRestart` only prompts are
/// reserved up-front; decode appends reserve per-iteration, and when
/// the cache runs dry the youngest sequence is preempted back to the
/// *front* of the wait queue. That push bumps the queue epoch, so an
/// armed gate must disarm immediately — its cached candidate is stale —
/// and the rescan must see both the new head and the freed blocks.
#[test]
fn preemption_freed_kv_unblocks_gate_like_full_rescan() {
    const KV: u64 = 24_576;
    let mut reqs: Vec<Request> =
        (0..14).map(|i| request(i, 0.0, 1_800, 2_500, RequestClass::Batch)).collect();
    reqs.push(request(14, 0.02, 1_800, 2_500, RequestClass::Batch));
    reqs.push(request(15, 0.30, 1_200, 64, RequestClass::Interactive));
    let trace = Trace::with_ids(reqs);
    let gated_report = gate_engine(KV, AdmissionMode::PreemptRestart, false).run(&trace);
    assert!(
        gated_report.preemptions() > 0,
        "trace must exercise decode-append preemption (got {} preemptions)",
        gated_report.preemptions()
    );
    let reference = gate_engine(KV, AdmissionMode::PreemptRestart, true).run(&trace);
    assert_eq!(
        deep_fingerprint(&gated_report),
        deep_fingerprint(&reference),
        "gated admission diverged from the linear rescan across preemptions"
    );
}

/// Randomized KV-pressure traces: a mix of prompts comparable to the
/// cache size, both admission modes, interactive and batch classes.
/// Most iterations in this regime have a blocked wait queue, so the
/// gate arms and disarms constantly — across retirements, sheds,
/// preemptions, EDF expiry, and arrivals — and every trace must leave
/// the report bit-identical to the linear-rescan twin.
fn arb_pressure_trace() -> impl Strategy<Value = Trace> {
    (prop::collection::vec((1u32..10_000, 1u32..400, 0.0f64..10.0, any::<bool>()), 1..32),)
        .prop_map(|(reqs,)| {
            reqs.into_iter()
                .map(|(input, output, at, interactive)| {
                    let class =
                        if interactive { RequestClass::Interactive } else { RequestClass::Batch };
                    request(0, at, input, output, class) // Trace::new renumbers
                })
                .collect()
        })
        .prop_map(Trace::new)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn gated_admission_matches_linear_rescan(
        trace in arb_pressure_trace(),
        kv in prop_oneof![Just(16_384u64), Just(24_576)],
        preempt in any::<bool>(),
    ) {
        let admission =
            if preempt { AdmissionMode::PreemptRestart } else { AdmissionMode::ReserveFull };
        let gated = deep_fingerprint(&gate_engine(kv, admission, false).run(&trace));
        let naive = deep_fingerprint(&gate_engine(kv, admission, true).run(&trace));
        prop_assert_eq!(&gated, &naive, "gated admission diverged from the linear rescan");
    }
}

proptest! {
    // Tier-2 long fuzz: run with `cargo test --release -- --ignored`
    // (the CI tier-2 job); reproduce a failure by exporting the
    // SP_PROPTEST_SEED recorded in target/proptest-failures/<test>.txt.
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    #[ignore = "tier-2 long fuzz; run with --ignored"]
    fn gated_admission_matches_linear_rescan_long(
        trace in arb_pressure_trace(),
        kv in prop_oneof![Just(16_384u64), Just(24_576), Just(40_000)],
        preempt in any::<bool>(),
    ) {
        let admission =
            if preempt { AdmissionMode::PreemptRestart } else { AdmissionMode::ReserveFull };
        let gated = deep_fingerprint(&gate_engine(kv, admission, false).run(&trace));
        let naive = deep_fingerprint(&gate_engine(kv, admission, true).run(&trace));
        prop_assert_eq!(&gated, &naive, "gated admission diverged from the linear rescan");
    }
}
