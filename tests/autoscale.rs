//! Acceptance test for load-signal autoscaling: on the bursty agentic
//! trace, an autoscaled cluster (scale-out on the load signal with a
//! cold-start delay, drain-then-retire in the valleys) must spend at
//! least 30% fewer replica-seconds than a fixed fleet provisioned for
//! the burst peak — while holding interactive SLO attainment within 2
//! points and interactive p99 TTFT within 10% of the fixed fleet.

use shift_parallelism::prelude::*;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_workload::bursty::BurstyConfig;

const KV_TOKENS: u64 = 60_000;
/// The fixed baseline is provisioned for the burst peak.
const PEAK_REPLICAS: usize = 4;
/// The autoscaled fleet idles at this floor between bursts.
const MIN_REPLICAS: usize = 2;

fn engine() -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig {
            kv_capacity_tokens: KV_TOKENS,
            class_slo: Some(ClassSlo::default()),
            queue_policy: QueuePolicy::InteractiveFirst,
            admission: AdmissionMode::PreemptRestart,
            ..EngineConfig::default()
        },
    )
}

/// Steady interactive stream with two agentic batch bursts and long
/// valleys, with never-admittable requests dropped.
fn bursty_trace() -> Trace {
    let trace = BurstyConfig {
        duration: Dur::from_secs(240.0),
        base_rate: 2.0,
        bursts: 2,
        burst_size: 60,
        ..BurstyConfig::default()
    }
    .generate();
    let fits: Vec<Request> =
        trace.requests().iter().copied().filter(|r| r.total_tokens() <= KV_TOKENS).collect();
    Trace::with_ids(fits)
}

fn interactive_p99_ttft(report: &EngineReport) -> f64 {
    let mut q = Quantiles::new();
    for r in report.records().iter().filter(|r| r.class == RequestClass::Interactive) {
        q.record(r.ttft().as_secs());
    }
    q.quantile(0.99).expect("interactive records present")
}

#[test]
fn autoscaled_fleet_saves_replica_seconds_within_interactive_slo() {
    let trace = bursty_trace();
    let slo = ClassSlo::default();

    // Fixed baseline: peak-sized fleet, always on.
    let mut fixed = ClusterSim::new(
        (0..PEAK_REPLICAS).map(|_| engine()).collect(),
        RoutingKind::EarliestDeadlineFeasible(slo).policy(),
    );
    let fixed_report = fixed.run(&trace);

    // Autoscaled: idles at the floor, grows toward the peak on the load
    // signal, drains back down in the valleys.
    let scaler = Autoscaler::new(
        AutoscaleConfig {
            cold_start: Dur::from_secs(5.0),
            min_replicas: MIN_REPLICAS,
            max_replicas: PEAK_REPLICAS,
        },
        Box::new(LoadBandPolicy::new(2_000.0, 800.0).smoothing(1.0).cooldown(Dur::from_secs(1.0))),
        |_| engine(),
    );
    let mut auto = ClusterSim::new(
        (0..MIN_REPLICAS).map(|_| engine()).collect(),
        RoutingKind::EarliestDeadlineFeasible(slo).policy(),
    )
    .with_autoscaler(scaler);
    let auto_report = auto.run(&trace);

    // Neither stack may lose requests.
    assert_eq!(fixed_report.records().len(), trace.len());
    assert_eq!(auto_report.records().len(), trace.len());

    let fixed_rs = fixed_report.fleet_timeline().replica_seconds(fixed_report.makespan());
    let auto_rs = auto_report.fleet_timeline().replica_seconds(auto_report.makespan());
    let fixed_att = fixed_report.class_slo_report(&slo).interactive.attainment();
    let auto_att = auto_report.class_slo_report(&slo).interactive.attainment();
    let fixed_p99 = interactive_p99_ttft(&fixed_report);
    let auto_p99 = interactive_p99_ttft(&auto_report);
    eprintln!(
        "replica-seconds: fixed {:.0} auto {:.0} (saving {:.1}%) | interactive attainment: fixed \
         {:.3} auto {:.3} | interactive p99 TTFT: fixed {:.3}s auto {:.3}s | auto peak {} spawned \
         {}",
        fixed_rs,
        auto_rs,
        100.0 * (1.0 - auto_rs / fixed_rs),
        fixed_att,
        auto_att,
        fixed_p99,
        auto_p99,
        auto_report.fleet_timeline().peak_provisioned(),
        auto_report.fleet_timeline().events().len(),
    );

    // A fixed fleet bills exactly replicas × makespan.
    assert!(
        (fixed_rs - PEAK_REPLICAS as f64 * fixed_report.makespan().as_secs()).abs() < 1e-6,
        "fixed fleet replica-seconds accounting drifted"
    );

    // The headline: at least 30% cheaper in replica-seconds.
    assert!(
        auto_rs <= 0.70 * fixed_rs,
        "autoscaled fleet spent {auto_rs:.0} replica-seconds, needed <= 70% of fixed \
         {fixed_rs:.0}"
    );

    // ...while staying within 2 attainment points...
    assert!(
        auto_att >= fixed_att - 0.02,
        "interactive attainment {auto_att:.3} fell more than 2 points below fixed {fixed_att:.3}"
    );

    // ...and within 10% on interactive p99 TTFT.
    assert!(
        auto_p99 <= 1.10 * fixed_p99,
        "interactive p99 TTFT {auto_p99:.3}s exceeded fixed {fixed_p99:.3}s by more than 10%"
    );

    // The autoscaler actually worked for its savings: it grew beyond the
    // floor during bursts and retired replicas afterwards.
    let tl = auto_report.fleet_timeline();
    assert!(tl.peak_provisioned() > MIN_REPLICAS, "autoscaler never scaled out");
    assert!(
        tl.events().iter().any(|e| e.kind == ReplicaEventKind::Retired),
        "autoscaler never drained a replica back down"
    );
}
