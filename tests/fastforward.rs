//! Byte-identity properties and edge cases for the decode fast-forward
//! path (`Engine::step_run` macro-stepping steady-state decode runs).
//!
//! The fast path is an *optimization*, never a behavior change: with
//! `set_fast_forward(false)` every engine walks the per-iteration
//! scheduler (build batch, price, advance one iteration), and the
//! fast-forwarded run must reproduce that loop's report bit-for-bit —
//! not just records and rejects, but throughput bins, makespan,
//! max-iteration time, config usage, KV peaks, and the per-iteration
//! timeline when capture is on. The properties here compare a deep
//! fingerprint across fast-forward on/off, sequential and
//! horizon-parallel widths {1, 2, 8}, under no faults, seeded fault
//! plans, and autoscaler churn; the edge-case tests pin the run-length
//! boundaries (length-1 runs, caps landing mid-run, memo-bucket
//! crossings) individually.

use proptest::prelude::*;
use shift_parallelism::prelude::*;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};

/// An engine with the decode fast-forward either live or forced off,
/// optional decode-shape memo, optional SLO admission, and timeline
/// capture (so the fingerprint pins per-iteration events bit-exactly).
fn engine_ff(kv: u64, memo: Option<u64>, slo: Option<ClassSlo>, fast_forward: bool) -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    let mut e = Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig {
            kv_capacity_tokens: kv,
            decode_memo_tokens: memo,
            class_slo: slo,
            record_timeline: true,
            ..EngineConfig::default()
        },
    );
    e.set_fast_forward(fast_forward);
    e
}

fn engines_ff(n: usize, kv: u64, memo: Option<u64>, fast_forward: bool) -> Vec<Engine> {
    (0..n).map(|_| engine_ff(kv, memo, None, fast_forward)).collect()
}

/// The KV-pressure regime the shape-stable windows and the admission
/// gate target: a tight cache, a small chunk budget (so prompts prefill
/// across many iterations and windows mix a chunked-prefill leader with
/// steady decodes), and SLO-aware EDF admission (so the gate arms with
/// an expiry and the shed path fires).
fn pressure_engine(kv: u64, fast_forward: bool) -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    let mut e = Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig {
            kv_capacity_tokens: kv,
            max_batched_tokens: 2048,
            class_slo: Some(ClassSlo::default()),
            record_timeline: true,
            ..EngineConfig::default()
        },
    );
    e.set_fast_forward(fast_forward);
    e
}

/// Everything observable about a report, in owned, bit-exact form. This
/// deliberately goes beyond the routing-equivalence fingerprint in
/// `cluster_properties.rs`: the fast-forward path recomputes iteration
/// counters, throughput bins, duration folds, and config usage in
/// closed form, so exactly those aggregates are what the comparison
/// must pin. f64s are compared via `to_bits` or their Debug rendering
/// (shortest-roundtrip, hence bit-exact).
fn deep_fingerprint(r: &EngineReport) -> (String, String, Vec<(u64, u64)>, u64) {
    let m = r.metrics();
    let bins: Vec<(u64, u64)> =
        m.throughput().totals().map(|(t, w)| (t.as_secs().to_bits(), w.to_bits())).collect();
    let mut usage: Vec<(String, u64)> =
        r.config_usage().iter().map(|(c, n)| (format!("{c:?}"), *n)).collect();
    usage.sort();
    let head = format!(
        "records={:?}|decisions={:?}|rejected={:?}|failed={:?}|fleet={:?}|faults={:?}|timeline={:?}",
        r.records(),
        r.routing_decisions(),
        r.rejected(),
        r.failed(),
        r.fleet_timeline().events(),
        r.fleet_timeline().request_faults(),
        r.timeline(),
    );
    let aggregates = format!(
        "iters={}|usage={usage:?}|makespan={}|max_iter={}|peak_kv={}|completed={}|tokens={}|last={}|preempt={}|sheds={}|defer={}",
        r.iterations(),
        r.makespan().as_secs().to_bits(),
        r.max_iteration_time().as_secs().to_bits(),
        r.peak_kv_utilization().to_bits(),
        m.completed(),
        m.total_tokens(),
        m.last_finish().as_secs().to_bits(),
        r.preemptions(),
        r.batch_sheds(),
        r.batch_deferrals(),
    );
    (head, aggregates, bins, r.iterations())
}

fn request(id: u64, at: f64, input: u32, output: u32) -> Request {
    Request {
        id,
        arrival: SimTime::from_secs(at),
        input_tokens: input,
        output_tokens: output,
        class: RequestClass::Batch,
        cached_prefix: 0,
        prefix_group: None,
    }
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (prop::collection::vec((1u32..12_000, 1u32..300, 0.0f64..40.0, any::<bool>()), 1..24),)
        .prop_map(|(reqs,)| {
            reqs.into_iter()
                .map(|(input, output, at, interactive)| Request {
                    id: 0, // Trace::new renumbers in arrival order
                    arrival: SimTime::from_secs(at),
                    input_tokens: input,
                    output_tokens: output,
                    class: if interactive {
                        RequestClass::Interactive
                    } else {
                        RequestClass::Batch
                    },
                    cached_prefix: 0,
                    prefix_group: None,
                })
                .collect()
        })
        .prop_map(Trace::new)
}

fn arb_memo() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), Just(Some(64u64)), Just(Some(4096))]
}

fn arb_fault_plan(max_replicas: usize) -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((0.0f64..30.0, 0usize..max_replicas, 0u8..8), 0..6).prop_map(|faults| {
        FaultPlan::new(
            faults
                .into_iter()
                .map(|(at, replica, kind)| FaultEvent {
                    at: SimTime::from_secs(at),
                    fault: match kind {
                        0..=3 => Fault::Crash { replica },
                        4 | 5 => {
                            Fault::Slowdown { replica, factor: 3.0, duration: Dur::from_secs(2.0) }
                        }
                        _ => Fault::RouteTimeout,
                    },
                })
                .collect(),
        )
    })
}

/// Runs a cluster as the sequential calendar (`None`) or the
/// horizon-parallel engine at the given width, fingerprinting the
/// merged report.
fn run_cluster(
    mut sim: ClusterSim<Engine>,
    threads: Option<usize>,
    trace: &Trace,
) -> (String, String, Vec<(u64, u64)>, u64) {
    match threads {
        None => sim.set_horizon_parallel(false),
        Some(t) => sim.set_threads(t),
    }
    deep_fingerprint(&sim.run(trace))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The core equivalence: a lone engine with fast-forward live must
    /// produce a bit-identical report to the same engine walking every
    /// iteration, across randomized traces, memo granularities, and SLO
    /// admission — including the captured per-iteration timeline, so a
    /// run that mis-attributed even one iteration's end instant,
    /// duration, config, or KV reading fails here.
    #[test]
    fn fastforward_engine_matches_per_iteration(
        trace in arb_trace(),
        memo in arb_memo(),
        use_slo in any::<bool>(),
        kv in prop_oneof![Just(30_000u64), Just(200_000)],
    ) {
        let slo = use_slo.then(ClassSlo::default);
        let fast = deep_fingerprint(&engine_ff(kv, memo, slo, true).run(&trace));
        let slow = deep_fingerprint(&engine_ff(kv, memo, slo, false).run(&trace));
        prop_assert_eq!(&fast, &slow, "fast-forward diverged from the per-iteration engine");
    }

    /// Cluster-level equivalence, no faults: fast-forward on, at the
    /// sequential calendar and horizon widths {1, 2, 8}, must match the
    /// per-iteration sequential calendar bit-for-bit. Runs here are cut
    /// by dispatch horizons (`WindowCap::FaultFree`), so the cap-clamp
    /// path is exercised on every arrival.
    #[test]
    fn fastforward_cluster_matches_per_iteration(
        trace in arb_trace(),
        n in 1usize..4,
        memo in arb_memo(),
        kv in prop_oneof![Just(30_000u64), Just(200_000)],
    ) {
        let build = |ff: bool| {
            ClusterSim::new(engines_ff(n, kv, memo, ff), RoutingKind::JoinShortestOutstanding.policy())
        };
        let baseline = run_cluster(build(false), None, &trace);
        prop_assert_eq!(
            &run_cluster(build(true), None, &trace),
            &baseline,
            "sequential fast-forward diverged"
        );
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                &run_cluster(build(true), Some(threads), &trace),
                &baseline,
                "fast-forward divergence at {} threads",
                threads
            );
        }
    }

    /// Cluster-level equivalence under seeded fault plans: crashes,
    /// slowdown windows, and route timeouts cut horizon windows at
    /// timer instants (`WindowCap::Faulted`), so decode runs clamp at
    /// fault timers and re-enter after salvage/redelivery — all of it
    /// bit-identical to the per-iteration loop at every width.
    #[test]
    fn fastforward_cluster_matches_per_iteration_under_faults(
        trace in arb_trace(),
        n in 1usize..4,
        plan in arb_fault_plan(4),
        memo in arb_memo(),
        budget in 0u32..3,
    ) {
        let retry = RetryPolicy { max_retries: budget, base_backoff: Dur::from_secs(0.25) };
        let build = |ff: bool| {
            ClusterSim::new(engines_ff(n, 60_000, memo, ff), RoutingKind::JoinShortestOutstanding.policy())
                .with_faults(plan.clone(), retry)
        };
        let baseline = run_cluster(build(false), None, &trace);
        prop_assert_eq!(
            &run_cluster(build(true), None, &trace),
            &baseline,
            "sequential fast-forward diverged under faults"
        );
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                &run_cluster(build(true), Some(threads), &trace),
                &baseline,
                "fast-forward divergence under faults at {} threads",
                threads
            );
        }
    }

    /// Cluster-level equivalence under KV pressure: prompts comparable
    /// to the cache with a 2048-token chunk budget, so windows carry
    /// mixed prefill+decode shapes, arrivals land mid-window, the
    /// KV-blocked admission gate arms (with EDF expiries and shed-path
    /// re-entries), and retirements re-open admission mid-horizon. The
    /// generalized shape-stable fast-forward must reproduce the
    /// per-iteration loop bit-for-bit at the sequential calendar and
    /// every horizon width, with and without a fault plan cutting the
    /// windows at timer instants.
    #[test]
    fn fastforward_cluster_matches_per_iteration_under_kv_pressure(
        trace in arb_trace(),
        n in 1usize..3,
        kv in prop_oneof![Just(16_384u64), Just(24_576)],
        plan in prop_oneof![Just(FaultPlan::empty()), arb_fault_plan(2)],
    ) {
        let retry = RetryPolicy { max_retries: 2, base_backoff: Dur::from_secs(0.25) };
        let build = |ff: bool| {
            let engines: Vec<Engine> = (0..n).map(|_| pressure_engine(kv, ff)).collect();
            ClusterSim::new(engines, RoutingKind::JoinShortestOutstanding.policy())
                .with_faults(plan.clone(), retry)
        };
        let baseline = run_cluster(build(false), None, &trace);
        prop_assert_eq!(
            &run_cluster(build(true), None, &trace),
            &baseline,
            "sequential fast-forward diverged under KV pressure"
        );
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                &run_cluster(build(true), Some(threads), &trace),
                &baseline,
                "fast-forward divergence under KV pressure at {} threads",
                threads
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Cluster-level equivalence under autoscaler churn: spawns, warmup
    /// promotions, drains, and retires are coordination events between
    /// windows, and a drained-dry replica must retire at the same
    /// instant whether its final decode plateau was fast-forwarded or
    /// stepped one iteration at a time.
    #[test]
    fn fastforward_cluster_matches_per_iteration_with_autoscaling(
        reqs in prop::collection::vec((1u32..12_000, 1u32..200, 0.0f64..8.0), 1..24),
        n in 1usize..4,
        memo in arb_memo(),
        hi in 150f64..1_500.0,
        lo in 20f64..120.0,
    ) {
        let trace = Trace::new(
            reqs.into_iter()
                .map(|(input, output, at)| request(0, at, input, output))
                .collect(),
        );
        let kv = 60_000u64;
        let build = |ff: bool| {
            let scaler = Autoscaler::new(
                AutoscaleConfig {
                    cold_start: Dur::from_secs(2.5),
                    min_replicas: 1,
                    max_replicas: 4,
                },
                Box::new(LoadBandPolicy::new(hi, lo).smoothing(0.5).cooldown(Dur::from_secs(2.0))),
                move |_| engine_ff(kv, memo, None, ff),
            );
            ClusterSim::new(engines_ff(n, kv, memo, ff), RoutingKind::JoinShortestOutstanding.policy())
                .with_autoscaler(scaler)
        };
        let baseline = run_cluster(build(false), None, &trace);
        prop_assert_eq!(
            &run_cluster(build(true), None, &trace),
            &baseline,
            "sequential fast-forward diverged under autoscaling"
        );
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                &run_cluster(build(true), Some(threads), &trace),
                &baseline,
                "fast-forward divergence under autoscaling at {} threads",
                threads
            );
        }
    }
}

/// Run length 1: simultaneous arrivals whose outputs differ by exactly
/// one token make `min(decode_remaining)` hit 1 on every run after the
/// first finish — each macro-step advances a single iteration, retires
/// one sequence, and rebuilds. The degenerate run must still be
/// bit-identical to per-iteration stepping (and actually complete
/// everything).
#[test]
fn run_length_one_is_byte_identical() {
    let trace = Trace::with_ids((0..6).map(|i| request(i, 0.0, 64, 3 + i as u32)).collect());
    let fast_report = engine_ff(100_000, None, None, true).run(&trace);
    let fast = deep_fingerprint(&fast_report);
    let slow = deep_fingerprint(&engine_ff(100_000, None, None, false).run(&trace));
    assert_eq!(fast, slow, "length-1 runs diverged from per-iteration stepping");
    assert_eq!(fast_report.records().len(), 6, "all staggered sequences must complete");
}

/// A slowdown window edge landing mid-plateau: the window's start and
/// end are fault timers, so the horizon cap (`WindowCap::Faulted`)
/// clamps a decode run partway through, the slowdown factor changes,
/// and the run resumes at the new per-iteration duration. Both edges
/// land strictly inside what would otherwise be one long decode run.
#[test]
fn slowdown_edge_mid_run_is_byte_identical() {
    let trace = Trace::with_ids((0..4).map(|i| request(i, 0.0, 128, 400)).collect());
    let plan = FaultPlan::new(vec![FaultEvent {
        at: SimTime::from_secs(1.0),
        fault: Fault::Slowdown { replica: 0, factor: 3.0, duration: Dur::from_secs(2.0) },
    }]);
    let retry = RetryPolicy { max_retries: 2, base_backoff: Dur::from_secs(0.25) };
    let build = |ff: bool| {
        ClusterSim::new(engines_ff(1, 100_000, Some(4096), ff), RoutingKind::default().policy())
            .with_faults(plan.clone(), retry)
    };
    let baseline = run_cluster(build(false), None, &trace);
    assert_eq!(
        run_cluster(build(true), None, &trace),
        baseline,
        "slowdown edge mid-run diverged (sequential)"
    );
    for threads in [1usize, 2, 8] {
        assert_eq!(
            run_cluster(build(true), Some(threads), &trace),
            baseline,
            "slowdown edge mid-run diverged at {threads} threads"
        );
    }
}

/// A crash timer landing inside a decode run: the run clamps at the
/// timer cap, the crash destroys the replica's in-flight work, and the
/// salvaged requests re-dispatch under retry — every salvage instant,
/// attempt count, and re-prefill must match the per-iteration loop.
#[test]
fn crash_timer_mid_run_is_byte_identical() {
    let trace = Trace::with_ids((0..4).map(|i| request(i, 0.0, 128, 400)).collect());
    let plan = FaultPlan::new(vec![FaultEvent {
        at: SimTime::from_secs(1.5),
        fault: Fault::Crash { replica: 0 },
    }]);
    let retry = RetryPolicy { max_retries: 2, base_backoff: Dur::from_secs(0.25) };
    let build = |ff: bool| {
        ClusterSim::new(engines_ff(2, 100_000, None, ff), RoutingKind::default().policy())
            .with_faults(plan.clone(), retry)
    };
    let baseline = run_cluster(build(false), None, &trace);
    assert_eq!(
        run_cluster(build(true), None, &trace),
        baseline,
        "crash timer mid-run diverged (sequential)"
    );
    for threads in [1usize, 2, 8] {
        assert_eq!(
            run_cluster(build(true), Some(threads), &trace),
            baseline,
            "crash timer mid-run diverged at {threads} threads"
        );
    }
}

/// Memo-bucket boundary crossing inside a run: with a tiny
/// `decode_memo_tokens` granularity the batch's total context crosses a
/// bucket edge every few iterations, so the fast path must re-price
/// mid-run at exactly the iterations the per-iteration loop would have
/// seen a new memo key — and insert the same entries, so a *subsequent*
/// run hits the same cached durations either way.
#[test]
fn memo_bucket_crossing_mid_run_is_byte_identical() {
    let trace =
        Trace::with_ids((0..5).map(|i| request(i, 0.0, 200 + 30 * i as u32, 300)).collect());
    for memo in [Some(64u64), Some(1024), None] {
        let fast = deep_fingerprint(&engine_ff(100_000, memo, None, true).run(&trace));
        let slow = deep_fingerprint(&engine_ff(100_000, memo, None, false).run(&trace));
        assert_eq!(fast, slow, "memo bucket crossings diverged (memo = {memo:?})");
    }
}
