//! Property, determinism, and edge-case tests for the online cluster
//! co-simulation (`ClusterSim`).
//!
//! The load-bearing property: online dispatch through `ClusterSim` with
//! the `StaticSplit` policy must be *observationally identical* to the
//! offline path (split the trace up front with
//! `DataParallelCluster::route`, run each shard on an isolated engine) —
//! same per-request records, same rejections. That equivalence is what
//! lets the event-driven simulator be trusted as a superset of the
//! offline one.

use proptest::prelude::*;
use shift_parallelism::prelude::*;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};

fn engine(kv: u64) -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig { kv_capacity_tokens: kv, ..EngineConfig::default() },
    )
}

/// An engine with optional SLO admission, optionally running its
/// pre-optimization reference scheduling paths (linear admission scan,
/// fold-based load snapshots).
fn engine_with(kv: u64, slo: Option<ClassSlo>, reference: bool) -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    let mut e = Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig { kv_capacity_tokens: kv, class_slo: slo, ..EngineConfig::default() },
    );
    e.set_reference_mode(reference);
    e
}

fn engines(n: usize, kv: u64) -> Vec<Engine> {
    (0..n).map(|_| engine(kv)).collect()
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (prop::collection::vec((1u32..12_000, 1u32..100, 0.0f64..60.0, any::<bool>()), 1..30),)
        .prop_map(|(reqs,)| {
            reqs.into_iter()
                .map(|(input, output, at, interactive)| Request {
                    id: 0, // Trace::new renumbers in arrival order
                    arrival: SimTime::from_secs(at),
                    input_tokens: input,
                    output_tokens: output,
                    class: if interactive {
                        RequestClass::Interactive
                    } else {
                        RequestClass::Batch
                    },
                    cached_prefix: 0,
                    prefix_group: None,
                })
                .collect()
        })
        .prop_map(Trace::new)
}

/// Like [`arb_trace`], but with every arrival packed into an 8 s window
/// so instantaneous load actually accumulates — the autoscaling
/// properties need traces that push a load-band policy across both
/// watermarks (spawns *and* drains), which uniformly spread arrivals
/// rarely do.
fn arb_dense_trace() -> impl Strategy<Value = Trace> {
    (prop::collection::vec((1u32..12_000, 1u32..100, 0.0f64..8.0, any::<bool>()), 1..30),)
        .prop_map(|(reqs,)| {
            reqs.into_iter()
                .map(|(input, output, at, interactive)| Request {
                    id: 0,
                    arrival: SimTime::from_secs(at),
                    input_tokens: input,
                    output_tokens: output,
                    class: if interactive {
                        RequestClass::Interactive
                    } else {
                        RequestClass::Batch
                    },
                    cached_prefix: 0,
                    prefix_group: None,
                })
                .collect()
        })
        .prop_map(Trace::new)
}

/// Canonical, order-independent encoding of a report's observable
/// per-request outcome. Timestamps are compared via their exact f64 bit
/// patterns: the equivalence below is bit-exact, not approximate.
fn canonical_records(report: &EngineReport) -> Vec<(u64, u64, u64, u64, u32, u32)> {
    let mut v: Vec<_> = report
        .records()
        .iter()
        .map(|r| {
            (
                r.request_id,
                r.arrival.as_secs().to_bits(),
                r.first_token.as_secs().to_bits(),
                r.finish.as_secs().to_bits(),
                r.input_tokens,
                r.output_tokens,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

fn sorted_rejects(report: &EngineReport) -> Vec<u64> {
    let mut v = report.rejected().to_vec();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Online `ClusterSim` + `StaticSplit` ≡ offline route-then-run: both
    /// paths assign identically (StaticSplit replays the greedy router),
    /// and since replicas share nothing, per-request records must agree
    /// bit-for-bit.
    #[test]
    fn static_split_online_equals_offline_replica_runs(
        trace in arb_trace(),
        n in 2usize..4,
        kv in prop_oneof![Just(30_000u64), Just(200_000)],
    ) {
        let mut online = ClusterSim::new(engines(n, kv), RoutingKind::StaticSplit.policy());
        let online_report = online.run(&trace);

        let offline_cluster = DataParallelCluster::new(n, |_| engine(kv));
        let shards = offline_cluster.route(&trace);
        prop_assert_eq!(shards.len(), n);
        let mut offline_merged = EngineReport::new(Dur::from_secs(1.0));
        for shard in &shards {
            offline_merged.merge(engine(kv).run(shard));
        }

        prop_assert_eq!(
            canonical_records(&online_report),
            canonical_records(&offline_merged),
            "online static split diverged from offline shard runs"
        );
        prop_assert_eq!(sorted_rejects(&online_report), sorted_rejects(&offline_merged));
        // The decision trail must replay the offline assignment exactly.
        for d in online_report.routing_decisions() {
            let offline_home = shards
                .iter()
                .position(|s| s.requests().iter().any(|q| q.id == d.request_id))
                .expect("request assigned offline");
            prop_assert_eq!(d.replica, offline_home, "request {}", d.request_id);
        }
    }

    /// Two identical JSQ runs must be byte-identical: same routing trail,
    /// same records, same aggregate counters. The tie-break contract
    /// (lowest index wins) leaves no room for nondeterminism.
    #[test]
    fn cluster_runs_are_deterministic(trace in arb_trace(), n in 1usize..4) {
        let run = || {
            let mut sim =
                ClusterSim::new(engines(n, 100_000), RoutingKind::JoinShortestOutstanding.policy());
            sim.run(&trace)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.routing_decisions(), b.routing_decisions());
        prop_assert_eq!(canonical_records(&a), canonical_records(&b));
        prop_assert_eq!(sorted_rejects(&a), sorted_rejects(&b));
        prop_assert_eq!(a.iterations(), b.iterations());
        prop_assert_eq!(format!("{:?}", a.records()), format!("{:?}", b.records()));
    }

    /// The event-calendar loop is an *optimization*, never a behavior
    /// change: over randomized traces and randomized push/step
    /// interleavings, `ClusterSim` (binary-heap dispatch, indexed EDF
    /// admission, incremental load counters) must stay in lockstep with
    /// `ReferenceClusterSim` (the pre-PR linear-rescan loop over
    /// reference-mode engines) — same next-event instant at every step,
    /// and byte-identical reports at the end.
    #[test]
    fn event_calendar_matches_reference_loop(
        trace in arb_trace(),
        n in 1usize..5,
        kv in prop_oneof![Just(30_000u64), Just(200_000)],
        use_slo in any::<bool>(),
        steps_between in prop::collection::vec(0usize..5, 0..32),
    ) {
        let slo = use_slo.then(ClassSlo::default);
        let build =
            |reference: bool| (0..n).map(|_| engine_with(kv, slo, reference)).collect::<Vec<_>>();
        let mut calendar =
            ClusterSim::new(build(false), RoutingKind::JoinShortestOutstanding.policy());
        let mut naive =
            ReferenceClusterSim::new(build(true), RoutingKind::JoinShortestOutstanding.policy());

        let next_bits = |cal: &ClusterSim<Engine>, naive: &ReferenceClusterSim<Engine>| {
            (
                cal.next_event_time().map(|t| t.as_secs().to_bits()),
                naive.next_event_time().map(|t| t.as_secs().to_bits()),
            )
        };
        for (k, &req) in trace.requests().iter().enumerate() {
            for _ in 0..steps_between.get(k).copied().unwrap_or(0) {
                let (a, b) = next_bits(&calendar, &naive);
                prop_assert_eq!(a, b, "next-event divergence before arrival {}", k);
                calendar.step_once();
                naive.step_once();
            }
            calendar.push_request(req);
            naive.push_request(req);
        }
        let mut guard: u64 = 0;
        while calendar.next_event_time().is_some() || naive.next_event_time().is_some() {
            let (a, b) = next_bits(&calendar, &naive);
            prop_assert_eq!(a, b, "next-event divergence while draining");
            calendar.step_once();
            naive.step_once();
            guard += 1;
            prop_assert!(guard < 2_000_000, "drain failed to terminate");
        }

        let a = calendar.take_report();
        let b = naive.take_report();
        prop_assert_eq!(a.routing_decisions(), b.routing_decisions());
        prop_assert_eq!(canonical_records(&a), canonical_records(&b));
        prop_assert_eq!(sorted_rejects(&a), sorted_rejects(&b));
        prop_assert_eq!(a.iterations(), b.iterations());
        prop_assert_eq!(format!("{:?}", a.records()), format!("{:?}", b.records()));
    }

    /// An attached autoscaler whose policy never fires must leave the
    /// run *byte-identical* to the plain fixed fleet: same routing
    /// trail, records, rejects. The lifecycle machinery may not perturb
    /// dispatch in any way until a scale decision actually happens.
    #[test]
    fn never_firing_autoscaler_is_byte_identical_to_fixed_fleet(
        trace in arb_trace(),
        n in 1usize..4,
        kv in prop_oneof![Just(30_000u64), Just(200_000)],
    ) {
        let mut fixed =
            ClusterSim::new(engines(n, kv), RoutingKind::JoinShortestOutstanding.policy());
        let fixed_report = fixed.run(&trace);

        let scaler =
            Autoscaler::new(AutoscaleConfig::default(), Box::new(NeverScale), move |_| engine(kv));
        let mut auto = ClusterSim::new(engines(n, kv), RoutingKind::JoinShortestOutstanding.policy())
            .with_autoscaler(scaler);
        let auto_report = auto.run(&trace);

        prop_assert_eq!(fixed_report.routing_decisions(), auto_report.routing_decisions());
        prop_assert_eq!(canonical_records(&fixed_report), canonical_records(&auto_report));
        prop_assert_eq!(sorted_rejects(&fixed_report), sorted_rejects(&auto_report));
        prop_assert_eq!(fixed_report.iterations(), auto_report.iterations());
        prop_assert_eq!(
            format!("{:?}", fixed_report.records()),
            format!("{:?}", auto_report.records())
        );
    }

    /// The calendar/reference byte-identity property *with live scale
    /// events*: a load-band autoscaler spawns (with cold start) and
    /// drains replicas mid-trace on both simulations, which share the
    /// lifecycle core but find the next event differently (heap vs
    /// linear rescan). Tombstoned generations in the heap key must keep
    /// retire-then-respawn slot reuse invisible: same next-event instant
    /// at every step, byte-identical reports and lifecycle timelines at
    /// the end.
    #[test]
    fn event_calendar_matches_reference_loop_with_scale_events(
        trace in arb_dense_trace(),
        n in 1usize..4,
        kv in prop_oneof![Just(30_000u64), Just(200_000)],
        hi in 150f64..1_500.0,
        lo in 20f64..120.0,
        cold in prop_oneof![Just(0.0f64), Just(2.5), Just(10.0)],
        steps_between in prop::collection::vec(0usize..5, 0..32),
    ) {
        let build =
            |reference: bool| (0..n).map(|_| engine_with(kv, None, reference)).collect::<Vec<_>>();
        let scaler = |reference: bool| {
            Autoscaler::new(
                AutoscaleConfig {
                    cold_start: Dur::from_secs(cold),
                    min_replicas: 1,
                    max_replicas: 4,
                },
                Box::new(
                    LoadBandPolicy::new(hi, lo).smoothing(0.5).cooldown(Dur::from_secs(2.0)),
                ),
                move |_| engine_with(kv, None, reference),
            )
        };
        let mut calendar =
            ClusterSim::new(build(false), RoutingKind::JoinShortestOutstanding.policy())
                .with_autoscaler(scaler(false));
        let mut naive =
            ReferenceClusterSim::new(build(true), RoutingKind::JoinShortestOutstanding.policy())
                .with_autoscaler(scaler(true));

        let next_bits = |cal: &ClusterSim<Engine>, naive: &ReferenceClusterSim<Engine>| {
            (
                cal.next_event_time().map(|t| t.as_secs().to_bits()),
                naive.next_event_time().map(|t| t.as_secs().to_bits()),
            )
        };
        for (k, &req) in trace.requests().iter().enumerate() {
            for _ in 0..steps_between.get(k).copied().unwrap_or(0) {
                let (a, b) = next_bits(&calendar, &naive);
                prop_assert_eq!(a, b, "next-event divergence before arrival {}", k);
                calendar.step_once();
                naive.step_once();
            }
            calendar.push_request(req);
            naive.push_request(req);
        }
        let mut guard: u64 = 0;
        while calendar.next_event_time().is_some() || naive.next_event_time().is_some() {
            let (a, b) = next_bits(&calendar, &naive);
            prop_assert_eq!(a, b, "next-event divergence while draining");
            calendar.step_once();
            naive.step_once();
            guard += 1;
            prop_assert!(guard < 2_000_000, "drain failed to terminate");
        }

        let a = calendar.take_report();
        let b = naive.take_report();
        prop_assert_eq!(a.routing_decisions(), b.routing_decisions());
        prop_assert_eq!(canonical_records(&a), canonical_records(&b));
        prop_assert_eq!(sorted_rejects(&a), sorted_rejects(&b));
        prop_assert_eq!(a.fleet_timeline().events(), b.fleet_timeline().events());
        prop_assert_eq!(format!("{:?}", a.records()), format!("{:?}", b.records()));
    }

    /// Drain-then-retire conservation: under an aggressive autoscaler no
    /// request is ever dropped, double-served, or double-reported — every
    /// arrival shows up exactly once as a record or a reject, and the
    /// lifecycle timeline stays well-formed (each replica alternates
    /// spawn/retire, every drain precedes its retire).
    #[test]
    fn autoscaled_runs_conserve_requests(
        trace in arb_dense_trace(),
        n in 1usize..3,
        hi in 150f64..1_500.0,
        lo in 20f64..120.0,
        cold in prop_oneof![Just(0.0f64), Just(5.0)],
    ) {
        let kv = 60_000u64;
        let scaler = Autoscaler::new(
            AutoscaleConfig { cold_start: Dur::from_secs(cold), min_replicas: 1, max_replicas: 5 },
            Box::new(LoadBandPolicy::new(hi, lo).smoothing(1.0).cooldown(Dur::from_secs(1.0))),
            move |_| engine(kv),
        );
        let mut sim = ClusterSim::new(engines(n, kv), RoutingKind::JoinShortestOutstanding.policy())
            .with_autoscaler(scaler);
        let report = sim.run(&trace);

        prop_assert_eq!(report.records().len() + report.rejected().len(), trace.len());
        let mut ids: Vec<u64> = report
            .records()
            .iter()
            .map(|r| r.request_id)
            .chain(report.rejected().iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), trace.len(), "a request was served or reported twice");
        prop_assert_eq!(sim.outstanding_tokens(), 0, "drained cluster holds no work");

        // Timeline sanity: per-replica lifecycles alternate correctly.
        let tl = report.fleet_timeline();
        for r in 0..tl.replica_count() {
            let mut alive = false;
            let mut draining = false;
            for e in tl.events().iter().filter(|e| e.replica == r) {
                match e.kind {
                    ReplicaEventKind::Spawned => {
                        prop_assert!(!alive, "replica {} spawned while alive", r);
                        alive = true;
                        draining = false;
                    }
                    ReplicaEventKind::Ready => prop_assert!(alive),
                    ReplicaEventKind::DrainStarted => {
                        prop_assert!(alive && !draining);
                        draining = true;
                    }
                    ReplicaEventKind::Retired => {
                        prop_assert!(alive && draining, "replica {} retired without draining", r);
                        alive = false;
                        draining = false;
                    }
                    ReplicaEventKind::Crashed => {
                        // A crash tears a replica down from any alive
                        // state — no drain required.
                        prop_assert!(alive, "replica {} crashed while empty", r);
                        alive = false;
                        draining = false;
                    }
                }
            }
        }
    }
}

/// Randomized fault schedules over a small fleet: crashes dominate, with
/// slowdown windows and route timeouts mixed in. Replica indices target
/// slots `0..max_replicas` so plans stay meaningful for any fleet size in
/// that range (crashing an empty slot is a defined no-op).
fn arb_fault_plan(max_replicas: usize) -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((0.0f64..30.0, 0usize..max_replicas, 0u8..8), 0..6).prop_map(|faults| {
        FaultPlan::new(
            faults
                .into_iter()
                .map(|(at, replica, kind)| FaultEvent {
                    at: SimTime::from_secs(at),
                    fault: match kind {
                        0..=3 => Fault::Crash { replica },
                        4 | 5 => {
                            Fault::Slowdown { replica, factor: 3.0, duration: Dur::from_secs(2.0) }
                        }
                        _ => Fault::RouteTimeout,
                    },
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Request conservation under arbitrary seeded crash schedules — the
    /// chaos analogue of `autoscaled_runs_conserve_requests`. Whatever
    /// the fault plan does (crashes salvaging in-flight work, route
    /// timeouts, slowdown windows), every pushed request must surface in
    /// the report exactly once: completed, rejected, or terminally
    /// `Failed` — and a failure must carry exactly the retry budget in
    /// spent attempts. Nothing is lost, nothing is double-served.
    #[test]
    fn crash_schedules_conserve_requests(
        reqs in prop::collection::vec((1u32..10_000, 1u32..60, 0.0f64..30.0, any::<bool>()), 1..10),
        n in 1usize..3,
        plan in arb_fault_plan(3),
        budget in 0u32..3,
    ) {
        let trace = Trace::new(
            reqs.into_iter()
                .map(|(input, output, at, interactive)| Request {
                    id: 0,
                    arrival: SimTime::from_secs(at),
                    input_tokens: input,
                    output_tokens: output,
                    class: if interactive {
                        RequestClass::Interactive
                    } else {
                        RequestClass::Batch
                    },
                    cached_prefix: 0,
                    prefix_group: None,
                })
                .collect(),
        );
        let retry = RetryPolicy { max_retries: budget, base_backoff: Dur::from_secs(0.25) };
        let mut sim = ClusterSim::new(engines(n, 30_000), RoutingKind::JoinShortestOutstanding.policy())
            .with_faults(plan, retry);
        let report = sim.run(&trace);

        prop_assert_eq!(
            report.records().len() + report.rejected().len() + report.failed().len(),
            trace.len(),
            "conservation: served {} + rejected {} + failed {} != pushed {}",
            report.records().len(),
            report.rejected().len(),
            report.failed().len(),
            trace.len()
        );
        let mut ids: Vec<u64> = report
            .records()
            .iter()
            .map(|r| r.request_id)
            .chain(report.rejected().iter().copied())
            .chain(report.failed().iter().map(|f| f.request_id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), trace.len(), "a request was served or reported twice");
        for f in report.failed() {
            prop_assert_eq!(
                f.attempts, retry.max_retries,
                "request {} abandoned after {} attempts with budget {}",
                f.request_id, f.attempts, retry.max_retries
            );
        }
        prop_assert_eq!(sim.outstanding_tokens(), 0, "drained cluster holds no work");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The calendar/reference byte-identity property *under fault
    /// injection*: both simulations consume the same `FaultPlan` through
    /// their shared fleet core, so crashes (gen-bumped slots, salvaged
    /// work), retry timers, slowdown windows, and route timeouts must
    /// leave the heap loop and the linear rescan in lockstep — same
    /// next-event instant at every step, byte-identical reports, fault
    /// trails, and failure lists at the end.
    #[test]
    fn event_calendar_matches_reference_loop_under_faults(
        trace in arb_trace(),
        n in 1usize..4,
        plan in arb_fault_plan(4),
        budget in 0u32..3,
        steps_between in prop::collection::vec(0usize..5, 0..32),
    ) {
        let retry = RetryPolicy { max_retries: budget, base_backoff: Dur::from_secs(0.5) };
        let mut calendar =
            ClusterSim::new(engines(n, 60_000), RoutingKind::JoinShortestOutstanding.policy())
                .with_faults(plan.clone(), retry);
        let mut naive = ReferenceClusterSim::new(
            (0..n).map(|_| engine_with(60_000, None, true)).collect::<Vec<_>>(),
            RoutingKind::JoinShortestOutstanding.policy(),
        )
        .with_faults(plan, retry);

        let next_bits = |cal: &ClusterSim<Engine>, naive: &ReferenceClusterSim<Engine>| {
            (
                cal.next_event_time().map(|t| t.as_secs().to_bits()),
                naive.next_event_time().map(|t| t.as_secs().to_bits()),
            )
        };
        for (k, &req) in trace.requests().iter().enumerate() {
            for _ in 0..steps_between.get(k).copied().unwrap_or(0) {
                let (a, b) = next_bits(&calendar, &naive);
                prop_assert_eq!(a, b, "next-event divergence before arrival {}", k);
                calendar.step_once();
                naive.step_once();
            }
            calendar.push_request(req);
            naive.push_request(req);
        }
        let mut guard: u64 = 0;
        while calendar.next_event_time().is_some() || naive.next_event_time().is_some() {
            let (a, b) = next_bits(&calendar, &naive);
            prop_assert_eq!(a, b, "next-event divergence while draining");
            calendar.step_once();
            naive.step_once();
            guard += 1;
            prop_assert!(guard < 2_000_000, "drain failed to terminate");
        }

        let a = calendar.take_report();
        let b = naive.take_report();
        prop_assert_eq!(a.routing_decisions(), b.routing_decisions());
        prop_assert_eq!(canonical_records(&a), canonical_records(&b));
        prop_assert_eq!(sorted_rejects(&a), sorted_rejects(&b));
        prop_assert_eq!(a.failed(), b.failed());
        prop_assert_eq!(
            a.fleet_timeline().request_faults(),
            b.fleet_timeline().request_faults()
        );
        prop_assert_eq!(a.fleet_timeline().events(), b.fleet_timeline().events());
        prop_assert_eq!(format!("{:?}", a.records()), format!("{:?}", b.records()));
    }
}

/// Everything the byte-identity properties compare, in owned form: the
/// decision trail, bit-exact record fields, reject/failure lists, the
/// lifecycle timeline, the fault trail, and the debug rendering of the
/// full record set (which captures every remaining field bit-exactly —
/// f64 debug formatting is shortest-roundtrip).
type Fingerprint = (String, Vec<(u64, u64, u64, u64, u32, u32)>, Vec<u64>, u64);

fn full_fingerprint(r: &EngineReport) -> Fingerprint {
    (
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}",
            r.routing_decisions(),
            r.records(),
            r.failed(),
            r.fleet_timeline().events(),
            r.fleet_timeline().request_faults(),
        ),
        canonical_records(r),
        sorted_rejects(r),
        r.iterations(),
    )
}

/// Runs `sim` over `trace` as the sequential calendar (`threads` of
/// `None`) or the horizon-parallel engine at the given fan-out width.
fn run_mode(mut sim: ClusterSim<Engine>, threads: Option<usize>, trace: &Trace) -> EngineReport {
    match threads {
        None => sim.set_horizon_parallel(false),
        Some(t) => sim.set_threads(t),
    }
    sim.run(trace)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The tentpole property: horizon-parallel execution (windows of
    /// independent replica stepping between coordination events, merged
    /// in slot order) is byte-identical to the sequential calendar for
    /// every thread count — same decision trail, bit-exact records,
    /// same timelines. `n = 12` cases cross the linear-scan threshold,
    /// so both calendar representations (linear rescan and heap) are
    /// covered.
    #[test]
    fn horizon_parallel_matches_sequential_calendar(
        trace in arb_trace(),
        n_sel in 0usize..6,
        kv in prop_oneof![Just(30_000u64), Just(200_000)],
    ) {
        let n = if n_sel == 5 { 12 } else { n_sel + 1 };
        let build = || ClusterSim::new(engines(n, kv), RoutingKind::JoinShortestOutstanding.policy());
        let sequential = full_fingerprint(&run_mode(build(), None, &trace));
        for threads in [1usize, 2, 8] {
            let parallel = full_fingerprint(&run_mode(build(), Some(threads), &trace));
            prop_assert_eq!(&parallel, &sequential, "divergence at {} threads", threads);
        }
    }

    /// Byte-identity under fault injection: crash salvage, retry
    /// backoff timers, slowdown windows and route timeouts all cut or
    /// interleave with the horizon windows, and the merged result must
    /// still match the sequential calendar exactly at every width.
    #[test]
    fn horizon_parallel_matches_sequential_under_faults(
        trace in arb_trace(),
        n in 1usize..4,
        plan in arb_fault_plan(4),
        budget in 0u32..3,
    ) {
        let retry = RetryPolicy { max_retries: budget, base_backoff: Dur::from_secs(0.25) };
        let build = || {
            ClusterSim::new(engines(n, 60_000), RoutingKind::JoinShortestOutstanding.policy())
                .with_faults(plan.clone(), retry)
        };
        let sequential = full_fingerprint(&run_mode(build(), None, &trace));
        for threads in [1usize, 2, 8] {
            let parallel = full_fingerprint(&run_mode(build(), Some(threads), &trace));
            prop_assert_eq!(&parallel, &sequential, "divergence at {} threads", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Byte-identity under autoscaler churn: warmup promotions, drains
    /// and retires are coordination events (they only happen at dispatch
    /// or timer instants), so windows never straddle them — spawn/retire
    /// order, slot reuse and the lifecycle timeline must come out
    /// identical to the sequential calendar at every width.
    #[test]
    fn horizon_parallel_matches_sequential_with_autoscaling(
        trace in arb_dense_trace(),
        n in 1usize..4,
        hi in 150f64..1_500.0,
        lo in 20f64..120.0,
        cold in prop_oneof![Just(0.0f64), Just(2.5), Just(10.0)],
    ) {
        let kv = 60_000u64;
        let build = || {
            let scaler = Autoscaler::new(
                AutoscaleConfig {
                    cold_start: Dur::from_secs(cold),
                    min_replicas: 1,
                    max_replicas: 4,
                },
                Box::new(
                    LoadBandPolicy::new(hi, lo).smoothing(0.5).cooldown(Dur::from_secs(2.0)),
                ),
                move |_| engine(kv),
            );
            ClusterSim::new(engines(n, kv), RoutingKind::JoinShortestOutstanding.policy())
                .with_autoscaler(scaler)
        };
        let sequential = full_fingerprint(&run_mode(build(), None, &trace));
        for threads in [1usize, 2, 8] {
            let parallel = full_fingerprint(&run_mode(build(), Some(threads), &trace));
            prop_assert_eq!(&parallel, &sequential, "divergence at {} threads", threads);
        }
    }
}

/// Minimal hand-rolled node for exercising `ClusterSim` against
/// pathological `next_event_time` values real engines never report.
#[derive(Debug)]
struct StubNode {
    time: SimTime,
    remaining: u32,
}

impl SimNode for StubNode {
    fn push_request(&mut self, _req: Request) {}

    fn step_once(&mut self) {
        self.remaining = self.remaining.saturating_sub(1);
    }

    fn next_event_time(&self) -> Option<SimTime> {
        (self.remaining > 0).then_some(self.time)
    }

    fn outstanding_tokens(&self) -> u64 {
        u64::from(self.remaining)
    }

    fn take_report(&mut self) -> EngineReport {
        EngineReport::new(Dur::from_secs(1.0))
    }
}

/// Regression: a node reporting a NaN next-event time must not panic the
/// dispatch loop. The pre-calendar `earliest()` compared instants with
/// `partial_cmp(..).expect("simulated clocks are finite")`, which panicked
/// the moment a NaN met another node's time; the calendar orders keys
/// with `f64::total_cmp`, under which NaN sorts after every finite
/// instant (and after infinity), so the pathological node simply goes
/// last.
#[test]
fn nan_next_event_time_is_ordered_not_a_panic() {
    // `SimTime::from_secs` rejects NaN, but arithmetic does not validate
    // — the same hole a buggy cost model would leak NaN through.
    let nan_time = SimTime::ZERO + Dur::from_secs(1.0) * f64::NAN;
    assert!(nan_time.as_secs().is_nan());

    let nodes = vec![
        StubNode { time: SimTime::from_secs(1.0), remaining: 3 },
        StubNode { time: nan_time, remaining: 2 },
    ];
    let mut sim = ClusterSim::new(nodes, RoutingKind::JoinShortestOutstanding.policy());

    // The finite node must drain first: NaN sorts after 1.0 s.
    for expected_outstanding in [5, 4, 3] {
        assert_eq!(sim.outstanding_tokens(), expected_outstanding);
        assert!(sim.next_event_time().is_some());
        sim.step_once();
    }
    assert_eq!(sim.outstanding_tokens(), 2, "finite-time node drains before the NaN node");

    // The NaN node still gets scheduled (its events are not lost), and
    // the cluster reaches quiescence without panicking.
    sim.step_once();
    sim.step_once();
    assert_eq!(sim.outstanding_tokens(), 0);
    assert!(sim.next_event_time().is_none());
}

/// A NaN-keyed event aborts a fault-free horizon window for a
/// sequential replay: whether the sequential loop steps a NaN node
/// before the horizon depends on the *other* slots' keys (NaN sorts
/// last), which a per-slot worker cannot observe. The windowed engine
/// must land in exactly the sequential state either way.
#[test]
fn nan_next_event_time_windowed_advance_matches_sequential() {
    let nan_time = SimTime::ZERO + Dur::from_secs(1.0) * f64::NAN;
    let build = || {
        vec![
            StubNode { time: SimTime::from_secs(1.0), remaining: 3 },
            StubNode { time: nan_time, remaining: 2 },
            StubNode { time: SimTime::from_secs(9.0), remaining: 4 },
        ]
    };
    let arrival = Request {
        id: 0,
        arrival: SimTime::from_secs(5.0),
        input_tokens: 1,
        output_tokens: 1,
        class: RequestClass::Interactive,
        cached_prefix: 0,
        prefix_group: None,
    };
    let mut results = Vec::new();
    for threads in [None, Some(1usize), Some(8)] {
        let mut sim = ClusterSim::new(build(), RoutingKind::JoinShortestOutstanding.policy());
        match threads {
            None => sim.set_horizon_parallel(false),
            Some(t) => sim.set_threads(t),
        }
        // Advancing to the arrival drains the 1.0 s node; the NaN node
        // holds, because the sequential loop breaks on the 9.0 s node's
        // key first (finite keys sort before NaN, and `NaN >= horizon`
        // is false only when NaN reaches the top). The windowed engine
        // must reproduce exactly that — its NaN fallback replays the
        // window sequentially rather than letting a per-slot worker
        // guess at the global order.
        sim.push_request(arrival);
        let remaining: Vec<u32> = sim.into_nodes().iter().map(|n| n.remaining).collect();
        results.push(remaining);
    }
    assert_eq!(results[0], results[1], "1-thread windowed diverged from sequential");
    assert_eq!(results[0], results[2], "8-thread windowed diverged from sequential");
    assert_eq!(results[0], vec![0, 2, 4], "1.0 s node drains; NaN and 9.0 s nodes hold");
}

#[test]
fn empty_trace_is_a_clean_noop() {
    let mut sim = ClusterSim::new(engines(2, 100_000), RoutingKind::default().policy());
    assert!(sim.next_event_time().is_none());
    assert_eq!(sim.outstanding_tokens(), 0);
    let report = sim.run(&Trace::default());
    assert!(report.records().is_empty());
    assert!(report.routing_decisions().is_empty());
    assert!(report.rejected().is_empty());
    assert_eq!(report.iterations(), 0);
}

#[test]
fn single_replica_cluster_degenerates_to_the_engine() {
    let trace = synthetic::poisson(12, 10.0, 512, 8, 7);
    let mut sim =
        ClusterSim::new(engines(1, 100_000), RoutingKind::JoinShortestOutstanding.policy());
    let online = sim.run(&trace);
    let offline = engine(100_000).run(&trace);
    assert!(online.routing_decisions().iter().all(|d| d.replica == 0));
    assert_eq!(canonical_records(&online), canonical_records(&offline));
}

#[test]
fn simultaneous_arrivals_are_all_dispatched() {
    // Every request arrives at the same instant: the router sees live
    // (already-updated) load for each successive dispatch, and none may
    // be lost or double-dispatched.
    let reqs: Vec<Request> = (0..10)
        .map(|i| Request {
            id: i,
            arrival: SimTime::from_secs(1.0),
            input_tokens: 2048,
            output_tokens: 8,
            class: RequestClass::Interactive,
            cached_prefix: 0,
            prefix_group: None,
        })
        .collect();
    let trace = Trace::with_ids(reqs);
    let mut sim =
        ClusterSim::new(engines(2, 100_000), RoutingKind::JoinShortestOutstanding.policy());
    let report = sim.run(&trace);
    assert_eq!(report.routing_decisions().len(), 10);
    assert_eq!(report.records().len(), 10);
    // JSQ must alternate rather than herd: pushing a request raises the
    // picked replica's outstanding load before the next pick.
    let to_first = report.routing_decisions().iter().filter(|d| d.replica == 0).count();
    assert_eq!(to_first, 5, "JSQ must spread simultaneous arrivals evenly");
}

#[test]
fn oversized_request_is_rejected_not_lost() {
    // One request larger than any replica's whole KV cache: it must land
    // in `rejected()`, everything else completes, and the sim terminates.
    let mut reqs = vec![Request {
        id: 0,
        arrival: SimTime::ZERO,
        input_tokens: 50_000,
        output_tokens: 8,
        class: RequestClass::Batch,
        cached_prefix: 0,
        prefix_group: None,
    }];
    reqs.extend((1..5).map(|i| Request {
        id: i,
        arrival: SimTime::from_secs(0.1 * i as f64),
        input_tokens: 1024,
        output_tokens: 8,
        class: RequestClass::Interactive,
        cached_prefix: 0,
        prefix_group: None,
    }));
    let trace = Trace::with_ids(reqs);
    let mut sim =
        ClusterSim::new(engines(2, 20_000), RoutingKind::JoinShortestOutstanding.policy());
    let report = sim.run(&trace);
    assert_eq!(report.rejected(), &[0]);
    assert_eq!(report.records().len(), 4);
    assert_eq!(report.records().len() + report.rejected().len(), trace.len());
    assert_eq!(sim.outstanding_tokens(), 0, "drained cluster holds no work");
}
