//! Acceptance test for SLO-aware admission + deadline-aware routing: on a
//! mixed bursty trace over KV-tight replicas, the deadline-aware stack
//! (EarliestDeadlineFeasible routing + class-SLO engines) must beat
//! class-blind join-shortest-outstanding on interactive SLO attainment
//! without giving up more than 15% of batch goodput.

use shift_parallelism::prelude::*;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_workload::bursty::BurstyConfig;

const KV_TOKENS: u64 = 60_000;

/// Two single-GPU replicas, KV-tight enough that batch bursts queue.
fn replicas(class_slo: Option<ClassSlo>) -> Vec<Engine> {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    (0..2)
        .map(|_| {
            Engine::new(
                ExecutionModel::new(node, presets::qwen_32b()),
                Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
                EngineConfig {
                    kv_capacity_tokens: KV_TOKENS,
                    class_slo,
                    ..EngineConfig::default()
                },
            )
        })
        .collect()
}

/// The default bursty mix (steady interactive stream + agentic batch
/// bursts), scaled to test length, with never-admittable requests dropped.
fn mixed_bursty_trace() -> Trace {
    let trace = BurstyConfig {
        duration: Dur::from_secs(120.0),
        base_rate: 2.0,
        bursts: 2,
        burst_size: 40,
        ..BurstyConfig::default()
    }
    .generate();
    let fits: Vec<Request> =
        trace.requests().iter().copied().filter(|r| r.total_tokens() <= KV_TOKENS).collect();
    Trace::with_ids(fits)
}

#[test]
fn deadline_aware_stack_beats_class_blind_jsq_on_interactive_slo() {
    let trace = mixed_bursty_trace();
    let slo = ClassSlo::default();

    // Class-blind baseline: JSQ routing, FCFS engines.
    let mut blind = ClusterSim::new(replicas(None), RoutingKind::JoinShortestOutstanding.policy());
    let blind_report = blind.run(&trace);

    // Deadline-aware stack: EDF routing + class-SLO engines.
    let mut aware =
        ClusterSim::new(replicas(Some(slo)), RoutingKind::EarliestDeadlineFeasible(slo).policy());
    let aware_report = aware.run(&trace);

    // No request may be lost by either stack.
    assert_eq!(blind_report.records().len(), trace.len());
    assert_eq!(aware_report.records().len(), trace.len());

    let blind_slo = blind_report.class_slo_report(&slo);
    let aware_slo = aware_report.class_slo_report(&slo);
    let makespan_of = |r: &EngineReport| r.makespan().since(SimTime::ZERO);
    eprintln!(
        "interactive attainment: blind {:.3} aware {:.3} | batch attainment: blind {:.3} aware \
         {:.3} | sheds {} deferrals {}",
        blind_slo.interactive.attainment(),
        aware_slo.interactive.attainment(),
        blind_slo.batch.attainment(),
        aware_slo.batch.attainment(),
        aware_report.batch_sheds(),
        aware_report.batch_deferrals(),
    );

    // The point of the machinery: strictly better interactive attainment.
    assert!(
        aware_slo.interactive.attainment() > blind_slo.interactive.attainment(),
        "deadline-aware interactive attainment {:.3} must exceed class-blind {:.3}",
        aware_slo.interactive.attainment(),
        blind_slo.interactive.attainment(),
    );

    // ...without sacrificing batch goodput (tokens of SLO-attaining batch
    // work per second) by more than 15%.
    let blind_batch = blind_slo.batch.goodput(makespan_of(&blind_report));
    let aware_batch = aware_slo.batch.goodput(makespan_of(&aware_report));
    assert!(
        aware_batch >= 0.85 * blind_batch,
        "batch goodput {aware_batch:.0} tok/s fell more than 15% below class-blind \
         {blind_batch:.0} tok/s"
    );

    // The class-aware machinery must actually have engaged on this trace:
    // the engines deferred (or shed) batch prefills for at-risk
    // interactive requests, and the class-blind baseline did neither.
    assert!(
        aware_report.batch_deferrals() + aware_report.batch_sheds() > 0,
        "expected SLO-aware scheduling activity on the bursty trace"
    );
    assert_eq!(blind_report.batch_deferrals(), 0);
    assert_eq!(blind_report.batch_sheds(), 0);
}
