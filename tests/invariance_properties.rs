//! Property-based integration tests of the paper's core soundness claims,
//! spanning the mapping, KV-layout and deployment crates.

use proptest::prelude::*;
use shift_parallelism::prelude::*;

proptest! {
    /// The shard maps of `shift-core::shards` (what a weight loader would
    /// use) agree with the head ownership the `sp-numeric` tensor
    /// implementation actually computes under Algorithm 1.
    #[test]
    fn shard_maps_agree_with_numeric_execution(sp_pow in 0u32..3, tp_pow in 0u32..3) {
        use shift_parallelism::numeric::{combined, tensor::Matrix, ToyTransformer};
        use shift_parallelism::core::shards::ShardMap;

        let sp = 1usize << sp_pow;
        let tp = 1usize << tp_pow;
        prop_assume!(sp * tp > 1 && sp * tp <= 8); // 8 q heads to distribute
        // Toy model with 8 q heads / 4 kv heads, matching head counts into
        // a ModelConfig for the shard map.
        let toy = ToyTransformer::seeded(1, 16, 8, 4, 2, 32, 3);
        let mut cfg = presets::llama_70b();
        cfg.q_heads = 8;
        cfg.kv_heads = 4;
        let map = ShardMap::for_base(&cfg, ParallelConfig::new(sp, tp)).unwrap();

        let x = Matrix::random(8, 16, 9);
        let (_, numeric_shards) = combined::forward(&toy, &x, sp, tp);
        for (rank_map, rank_numeric) in map.ranks().iter().zip(&numeric_shards) {
            let loader_heads: Vec<usize> =
                rank_map.q_heads.iter().map(|&h| h as usize).collect();
            prop_assert_eq!(&loader_heads, &rank_numeric.q_heads,
                "rank {} loader vs numeric ownership", rank_map.rank);
        }
    }

    /// §3.3.1 generalized: for every (SP, TP) factorization of 8 GPUs and
    /// every Table 4 model, a valid base config yields an invariance
    /// certificate, and its head order is exactly the SP_TP group.
    #[test]
    fn certificates_match_sp_tp_group(tp_pow in 0u32..4, model_idx in 0usize..4) {
        let tp = 1usize << tp_pow;
        let sp = 8 / tp;
        let base = ParallelConfig::new(sp, tp);
        let model = presets::all_table4()[model_idx].clone();
        if let Ok(cert) = InvarianceCertificate::verify(&model, base) {
            let mapping = ProcessMapping::new(sp, tp);
            let expected: Vec<u32> =
                mapping.sp_tp_group().into_iter().map(|r| r as u32).collect();
            prop_assert_eq!(cert.head_order(), &expected[..]);
        }
    }

    /// Eq. 1 end-to-end: the deployment's KV capacity shrinks by exactly
    /// the shift model's weight share relative to a static SP deployment.
    #[test]
    fn shift_kv_capacity_reflects_eq1(model_idx in 0usize..2) {
        let model = presets::all_table4()[model_idx].clone();
        let node = NodeSpec::p5en_48xlarge();
        let base = Deployment::auto_base(&node, &model, 0.9).unwrap();
        let shift = Deployment::builder(node, model.clone())
            .kind(DeploymentKind::ShiftWithBase { base, threshold: 256 })
            .build()
            .unwrap();
        let static_base = Deployment::builder(node, model.clone())
            .kind(DeploymentKind::Static(base))
            .build()
            .unwrap();
        prop_assert!(shift.kv_capacity_tokens() < static_base.kv_capacity_tokens());
        // The missing capacity equals w/(SP·TP) bytes of KV tokens.
        let plan = ShiftWeightPlan::new(&model, base, WeightStrategy::SeparateModels);
        let missing_bytes = (static_base.kv_capacity_tokens()
            - shift.kv_capacity_tokens()) as f64
            * sp_kvcache::KvShardLayout::for_model(&model, base.degree())
                .unwrap()
                .per_gpu_kv_bytes_per_token(&model) as f64;
        let expected = plan.shift_extra_bytes_per_gpu() as f64;
        prop_assert!((missing_bytes / expected - 1.0).abs() < 0.01,
            "missing {missing_bytes} vs expected {expected}");
    }

    /// Conservation: every request in every workload is either completed
    /// exactly once or rejected, never lost, for all deployment kinds.
    #[test]
    fn no_request_is_ever_lost(
        count in 1usize..30,
        rate in 0.5f64..30.0,
        input in 64u32..4096,
        output in 1u32..64,
        seed in any::<u64>(),
        kind_idx in 0usize..4,
    ) {
        let kind = [
            DeploymentKind::TensorParallel,
            DeploymentKind::DataParallel,
            DeploymentKind::SequenceParallel,
            DeploymentKind::Shift,
        ][kind_idx];
        let trace = synthetic::poisson(count, rate, input, output, seed);
        let mut dep = Deployment::builder(NodeSpec::p5en_48xlarge(), presets::qwen_32b())
            .kind(kind)
            .build()
            .unwrap();
        let report = dep.run(&trace);
        prop_assert_eq!(report.records().len() + report.rejected().len(), count);
        let mut ids: Vec<u64> = report
            .records()
            .iter()
            .map(|r| r.request_id)
            .chain(report.rejected().iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), count);
    }

    /// Latency sanity for every completed request: arrival ≤ first token ≤
    /// finish, and decode time is consistent with TPOT.
    #[test]
    fn record_timestamps_are_ordered(
        count in 1usize..20,
        input in 128u32..8192,
        output in 2u32..128,
    ) {
        let trace = synthetic::uniform_batch(count, input, output);
        let mut dep = Deployment::builder(NodeSpec::p5en_48xlarge(), presets::llama_70b())
            .kind(DeploymentKind::Shift)
            .build()
            .unwrap();
        let report = dep.run(&trace);
        for r in report.records() {
            prop_assert!(r.first_token >= r.arrival);
            prop_assert!(r.finish >= r.first_token);
            let decode = r.finish.since(r.first_token).as_secs();
            let tpot = r.tpot().as_secs();
            prop_assert!((decode - tpot * f64::from(output - 1)).abs() < 1e-9);
        }
    }
}
