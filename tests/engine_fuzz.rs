//! Randomized stress tests of the serving engine: arbitrary traces,
//! scheduler knobs and deployment kinds must never lose requests, violate
//! timestamp ordering, or leak KV accounting.

use proptest::prelude::*;
use shift_parallelism::prelude::*;

fn arb_kind() -> impl Strategy<Value = DeploymentKind> {
    prop_oneof![
        Just(DeploymentKind::TensorParallel),
        Just(DeploymentKind::DataParallel),
        Just(DeploymentKind::SequenceParallel),
        Just(DeploymentKind::Shift),
        (1usize..4, 0u64..2048).prop_map(|(sp_pow, threshold)| {
            let sp = 1 << sp_pow;
            DeploymentKind::ShiftWithBase { base: ParallelConfig::new(sp, 8 / sp), threshold }
        }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (prop::collection::vec((1u32..16_000, 1u32..200, 0.0f64..120.0, any::<bool>()), 1..40),)
        .prop_map(|(reqs,)| {
            reqs.into_iter()
                .enumerate()
                .map(|(i, (input, output, at, interactive))| Request {
                    id: i as u64,
                    arrival: SimTime::from_secs(at),
                    input_tokens: input,
                    output_tokens: output,
                    class: if interactive {
                        RequestClass::Interactive
                    } else {
                        RequestClass::Batch
                    },
                    cached_prefix: 0,
                    prefix_group: None,
                })
                .collect()
        })
}

/// Randomized fault schedules overlapping the trace window: crashes
/// dominate, with slowdown windows and route timeouts mixed in. Replica
/// indices may exceed the live fleet (crashing an empty or out-of-range
/// slot is a defined no-op).
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((0.0f64..120.0, 0usize..5, 0u8..8, 1.5f64..6.0, 0.5f64..8.0), 0..8)
        .prop_map(|faults| {
            FaultPlan::new(
                faults
                    .into_iter()
                    .map(|(at, replica, kind, factor, dur)| FaultEvent {
                        at: SimTime::from_secs(at),
                        fault: match kind {
                            0..=3 => Fault::Crash { replica },
                            4 | 5 => {
                                Fault::Slowdown { replica, factor, duration: Dur::from_secs(dur) }
                            }
                            _ => Fault::RouteTimeout,
                        },
                    })
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn engine_never_loses_or_corrupts_requests(
        trace in arb_trace(),
        kind in arb_kind(),
        max_batched in prop_oneof![Just(2048u64), Just(8192)],
        max_seqs in prop_oneof![Just(4usize), Just(64)],
        preempt in any::<bool>(),
        priority in any::<bool>(),
        cap in prop_oneof![Just(None), Just(Some(1024u64))],
    ) {
        let mut builder = Deployment::builder(NodeSpec::p5en_48xlarge(), presets::qwen_32b())
            .kind(kind)
            .max_batched_tokens(max_batched)
            .max_seqs(max_seqs)
            .queue_policy(if priority {
                QueuePolicy::InteractiveFirst
            } else {
                QueuePolicy::Fcfs
            })
            .admission(if preempt {
                AdmissionMode::PreemptRestart
            } else {
                AdmissionMode::ReserveFull
            });
        if let Some(c) = cap {
            builder = builder.max_prefill_tokens(c);
        }
        let mut dep = builder.build().expect("evaluation configs always deploy");
        let report = dep.run(&trace);

        // 1. Conservation: every request completed or rejected, once.
        prop_assert_eq!(report.records().len() + report.rejected().len(), trace.len());
        let mut ids: Vec<u64> = report
            .records()
            .iter()
            .map(|r| r.request_id)
            .chain(report.rejected().iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), trace.len());

        // 2. Timestamp sanity on every record.
        for r in report.records() {
            prop_assert!(r.first_token >= r.arrival);
            prop_assert!(r.finish >= r.first_token);
            prop_assert!(r.finish.as_secs() <= report.makespan().as_secs() + 1e-9);
        }

        // 3. Output fidelity: completed requests produced exactly their
        //    requested output tokens.
        for r in report.records() {
            let want = trace
                .requests()
                .iter()
                .find(|q| q.id == r.request_id)
                .expect("record corresponds to a request");
            prop_assert_eq!(r.output_tokens, want.output_tokens);
            prop_assert_eq!(r.input_tokens, want.input_tokens);
        }

        // 4. Accounting sanity.
        prop_assert!(report.peak_kv_utilization() <= 1.0 + 1e-9);
        let configs: u64 = report.config_usage().values().sum();
        prop_assert_eq!(configs, report.iterations());
        if !preempt {
            prop_assert_eq!(report.preemptions(), 0);
        }
    }

    #[test]
    fn fleet_conserves_requests(
        trace in arb_trace(),
        nodes in 1usize..4,
    ) {
        let mut fleet = shift_parallelism::core::fleet::Fleet::new(nodes, || {
            Deployment::builder(NodeSpec::p5en_48xlarge(), presets::qwen_32b())
                .kind(DeploymentKind::Shift)
        })
        .unwrap();
        let report = fleet.run(&trace);
        prop_assert_eq!(report.records().len() + report.rejected().len(), trace.len());
    }

    #[test]
    fn cluster_sim_survives_arbitrary_interleavings(
        trace in arb_trace(),
        replicas in 1usize..4,
        kind in prop_oneof![
            Just(RoutingKind::JoinShortestOutstanding),
            Just(RoutingKind::RoundRobin),
            Just(RoutingKind::StaticSplit),
            Just(RoutingKind::EarliestDeadlineFeasible(ClassSlo::default())),
        ],
        // Extra step_once calls injected between dispatches.
        steps in prop::collection::vec(0usize..6, 40),
    ) {
        drive_interleaved(&trace, replicas, kind, &steps, None, EnginePressure::default());
    }

    #[test]
    fn autoscaled_cluster_sim_survives_arbitrary_interleavings(
        trace in arb_trace(),
        replicas in 1usize..4,
        kind in prop_oneof![
            Just(RoutingKind::JoinShortestOutstanding),
            Just(RoutingKind::JsqByTtft),
            Just(RoutingKind::EarliestDeadlineFeasible(ClassSlo::default())),
        ],
        steps in prop::collection::vec(0usize..6, 40),
        hi in 150f64..1_500.0,
        lo in 20f64..120.0,
        cold in prop_oneof![Just(0.0f64), Just(5.0)],
    ) {
        drive_interleaved(&trace, replicas, kind, &steps, Some((hi, lo, cold)), EnginePressure::default());
    }

    #[test]
    fn faulted_cluster_sim_survives_arbitrary_interleavings(
        trace in arb_trace(),
        replicas in 1usize..4,
        kind in prop_oneof![
            Just(RoutingKind::JoinShortestOutstanding),
            Just(RoutingKind::RoundRobin),
            Just(RoutingKind::EarliestDeadlineFeasible(ClassSlo::default())),
        ],
        steps in prop::collection::vec(0usize..6, 40),
        plan in arb_fault_plan(),
        budget in 0u32..4,
        scale in any::<bool>(),
    ) {
        let scale = scale.then_some((400.0, 60.0, 5.0));
        drive_interleaved_faulty(&trace, replicas, kind, &steps, scale, plan, budget, EnginePressure::default());
    }
}

proptest! {
    // Tier-2 long fuzz: bigger step mixes, many more cases. Run with
    // `cargo test --release -- --ignored` (the CI tier-2 job); reproduce
    // a failure by exporting the SP_PROPTEST_SEED recorded in
    // target/proptest-failures/<test>.txt.
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    #[ignore = "tier-2 long fuzz; run with --ignored"]
    fn cluster_sim_survives_arbitrary_interleavings_long(
        trace in arb_trace(),
        replicas in 1usize..5,
        kind in prop_oneof![
            Just(RoutingKind::JoinShortestOutstanding),
            Just(RoutingKind::RoundRobin),
            Just(RoutingKind::StaticSplit),
            Just(RoutingKind::EarliestDeadlineFeasible(ClassSlo::default())),
        ],
        steps in prop::collection::vec(0usize..12, 60),
    ) {
        drive_interleaved(&trace, replicas, kind, &steps, None, EnginePressure::default());
    }

    #[test]
    #[ignore = "tier-2 long fuzz; run with --ignored"]
    fn autoscaled_cluster_sim_survives_arbitrary_interleavings_long(
        trace in arb_trace(),
        replicas in 1usize..5,
        kind in prop_oneof![
            Just(RoutingKind::JoinShortestOutstanding),
            Just(RoutingKind::JsqByTtft),
            Just(RoutingKind::EarliestDeadlineFeasible(ClassSlo::default())),
        ],
        steps in prop::collection::vec(0usize..12, 60),
        hi in 150f64..1_500.0,
        lo in 20f64..120.0,
        cold in prop_oneof![Just(0.0f64), Just(2.5), Just(10.0)],
    ) {
        drive_interleaved(&trace, replicas, kind, &steps, Some((hi, lo, cold)), EnginePressure::default());
    }

    #[test]
    #[ignore = "tier-2 long fuzz; run with --ignored"]
    fn faulted_cluster_sim_survives_arbitrary_interleavings_long(
        trace in arb_trace(),
        replicas in 1usize..5,
        kind in prop_oneof![
            Just(RoutingKind::JoinShortestOutstanding),
            Just(RoutingKind::RoundRobin),
            Just(RoutingKind::JsqByTtft),
            Just(RoutingKind::EarliestDeadlineFeasible(ClassSlo::default())),
        ],
        steps in prop::collection::vec(0usize..12, 60),
        plan in arb_fault_plan(),
        budget in 0u32..4,
        scale in any::<bool>(),
        cold in prop_oneof![Just(0.0f64), Just(2.5), Just(10.0)],
    ) {
        let scale = scale.then_some((400.0, 60.0, cold));
        drive_interleaved_faulty(&trace, replicas, kind, &steps, scale, plan, budget, EnginePressure::default());
    }

    /// KV-pressure variant: a 20k-token cache against 16k-token prompts
    /// with a 2048-token chunk budget keeps the wait queue blocked on
    /// most iterations, so the KV-blocked admission gate arms and
    /// disarms across retirements, SLO sheds, preemptions, crashes, and
    /// arrivals. The conservation and monotonic-time invariants must
    /// survive the gate exactly as they do the full rescan; a gate that
    /// wedges (never disarms) fails the drain guard, and one that
    /// double-admits fails conservation.
    #[test]
    #[ignore = "tier-2 long fuzz; run with --ignored"]
    fn kv_pressure_cluster_sim_survives_arbitrary_interleavings_long(
        trace in arb_trace(),
        replicas in 1usize..5,
        kind in prop_oneof![
            Just(RoutingKind::JoinShortestOutstanding),
            Just(RoutingKind::EarliestDeadlineFeasible(ClassSlo::default())),
        ],
        steps in prop::collection::vec(0usize..12, 60),
        plan in arb_fault_plan(),
        budget in 0u32..4,
        preempt in any::<bool>(),
        scale in any::<bool>(),
    ) {
        let scale = scale.then_some((400.0, 60.0, 2.5));
        drive_interleaved_faulty(
            &trace,
            replicas,
            kind,
            &steps,
            scale,
            plan,
            budget,
            EnginePressure::tight(preempt),
        );
    }
}

/// Engine sizing for the interleaving drivers. The default reproduces
/// the historical regime (roomy cache, full-prompt chunks); `tight()`
/// is the KV-pressure regime where most iterations leave the wait
/// queue blocked, prefills chunk across many iterations, and the
/// KV-blocked admission gate arms and disarms constantly across
/// retirements, sheds, preemptions, and arrivals.
#[derive(Clone, Copy)]
struct EnginePressure {
    kv: u64,
    max_batched: u64,
    admission: AdmissionMode,
}

impl Default for EnginePressure {
    fn default() -> EnginePressure {
        EnginePressure { kv: 40_000, max_batched: 8192, admission: AdmissionMode::ReserveFull }
    }
}

impl EnginePressure {
    fn tight(preempt: bool) -> EnginePressure {
        EnginePressure {
            kv: 20_000,
            max_batched: 2048,
            admission: if preempt {
                AdmissionMode::PreemptRestart
            } else {
                AdmissionMode::ReserveFull
            },
        }
    }
}

/// Drives a `ClusterSim` through an explicit push/step interleaving via
/// the incremental `SimNode` surface (instead of the packaged `run`) and
/// checks the invariants that must hold under *any* interleaving: event
/// times never run backwards, no request is lost or duplicated, and a
/// drained cluster holds no outstanding work. With `scale` set, a
/// load-band autoscaler spawns and drains replicas mid-run, so the same
/// invariants are checked across replica lifecycle churn.
fn drive_interleaved(
    trace: &Trace,
    replicas: usize,
    kind: RoutingKind,
    steps: &[usize],
    scale: Option<(f64, f64, f64)>,
    pressure: EnginePressure,
) {
    let node = sp_cluster::NodeSpec::new(
        sp_cluster::GpuSpec::h200(),
        1,
        sp_cluster::InterconnectSpec::nvswitch(),
    );
    let build = move || {
        Engine::new(
            ExecutionModel::new(node, presets::qwen_32b()),
            Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
            EngineConfig {
                kv_capacity_tokens: pressure.kv,
                max_batched_tokens: pressure.max_batched,
                admission: pressure.admission,
                class_slo: matches!(kind, RoutingKind::EarliestDeadlineFeasible(_))
                    .then(ClassSlo::default),
                ..EngineConfig::default()
            },
        )
    };
    let engines: Vec<Engine> = (0..replicas).map(|_| build()).collect();
    let mut sim = ClusterSim::new(engines, kind.policy());
    if let Some((hi, lo, cold)) = scale {
        sim = sim.with_autoscaler(Autoscaler::new(
            AutoscaleConfig { cold_start: Dur::from_secs(cold), min_replicas: 1, max_replicas: 5 },
            Box::new(LoadBandPolicy::new(hi, lo).smoothing(1.0).cooldown(Dur::from_secs(1.0))),
            move |_| build(),
        ));
    }

    for (i, &req) in trace.requests().iter().enumerate() {
        // A burst of manual steps before the dispatch (no-ops when idle).
        // These may drive a node's clock past the next arrival — a
        // legitimate driver-induced time warp the sim must absorb.
        for _ in 0..steps[i % steps.len()] {
            sim.step_once();
        }
        sim.push_request(req);
    }

    // Drain manually through the incremental surface. With no further
    // pushes, the event queue discipline kicks in: the global next-event
    // time must never run backwards.
    let mut guard = 0u64;
    let mut last_event = SimTime::ZERO;
    while let Some(t) = sim.next_event_time() {
        assert!(
            t.as_secs() >= last_event.as_secs(),
            "event time ran backwards during drain: {} < {}",
            t.as_secs(),
            last_event.as_secs()
        );
        last_event = t;
        sim.step_once();
        guard += 1;
        assert!(guard < 100_000_000, "interleaved drive failed to drain");
    }
    assert_eq!(sim.outstanding_tokens(), 0, "drained cluster still holds work");

    let report = sim.take_report();
    assert_eq!(report.routing_decisions().len(), trace.len());
    assert_eq!(
        report.records().len() + report.rejected().len(),
        trace.len(),
        "requests lost or duplicated under interleaving"
    );
    let mut ids: Vec<u64> = report
        .records()
        .iter()
        .map(|r| r.request_id)
        .chain(report.rejected().iter().copied())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), trace.len());
    for r in report.records() {
        assert!(r.first_token >= r.arrival);
        assert!(r.finish >= r.first_token);
    }
}

/// The fault-injected cousin of [`drive_interleaved`]: the same explicit
/// push/step interleaving with a `FaultPlan` firing crashes, slowdown
/// windows and route timeouts between (and during) dispatches. The
/// invariants shift accordingly: event times still never run backwards,
/// but conservation now counts three terminal outcomes — completed,
/// rejected, or `Failed` with exactly the retry budget in spent attempts.
#[allow(clippy::too_many_arguments)] // test driver: each knob is an independent proptest dimension
fn drive_interleaved_faulty(
    trace: &Trace,
    replicas: usize,
    kind: RoutingKind,
    steps: &[usize],
    scale: Option<(f64, f64, f64)>,
    plan: FaultPlan,
    budget: u32,
    pressure: EnginePressure,
) {
    let node = sp_cluster::NodeSpec::new(
        sp_cluster::GpuSpec::h200(),
        1,
        sp_cluster::InterconnectSpec::nvswitch(),
    );
    let build = move || {
        Engine::new(
            ExecutionModel::new(node, presets::qwen_32b()),
            Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
            EngineConfig {
                kv_capacity_tokens: pressure.kv,
                max_batched_tokens: pressure.max_batched,
                admission: pressure.admission,
                class_slo: matches!(kind, RoutingKind::EarliestDeadlineFeasible(_))
                    .then(ClassSlo::default),
                ..EngineConfig::default()
            },
        )
    };
    let retry = RetryPolicy { max_retries: budget, base_backoff: Dur::from_secs(0.5) };
    let engines: Vec<Engine> = (0..replicas).map(|_| build()).collect();
    let mut sim = ClusterSim::new(engines, kind.policy()).with_faults(plan, retry);
    if let Some((hi, lo, cold)) = scale {
        sim = sim.with_autoscaler(Autoscaler::new(
            AutoscaleConfig { cold_start: Dur::from_secs(cold), min_replicas: 1, max_replicas: 5 },
            Box::new(LoadBandPolicy::new(hi, lo).smoothing(1.0).cooldown(Dur::from_secs(1.0))),
            move |_| build(),
        ));
    }

    for (i, &req) in trace.requests().iter().enumerate() {
        for _ in 0..steps[i % steps.len()] {
            sim.step_once();
        }
        sim.push_request(req);
    }

    let mut guard = 0u64;
    let mut last_event = SimTime::ZERO;
    while let Some(t) = sim.next_event_time() {
        assert!(
            t.as_secs() >= last_event.as_secs(),
            "event time ran backwards during faulted drain: {} < {}",
            t.as_secs(),
            last_event.as_secs()
        );
        last_event = t;
        sim.step_once();
        guard += 1;
        assert!(guard < 100_000_000, "faulted interleaved drive failed to drain");
    }
    assert_eq!(sim.outstanding_tokens(), 0, "drained cluster still holds work");

    let report = sim.take_report();
    assert_eq!(
        report.records().len() + report.rejected().len() + report.failed().len(),
        trace.len(),
        "requests lost or duplicated under fault injection"
    );
    let mut ids: Vec<u64> = report
        .records()
        .iter()
        .map(|r| r.request_id)
        .chain(report.rejected().iter().copied())
        .chain(report.failed().iter().map(|f| f.request_id))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), trace.len());
    for f in report.failed() {
        assert_eq!(
            f.attempts, budget,
            "request {} abandoned after {} attempts with budget {}",
            f.request_id, f.attempts, budget
        );
    }
    // Every completed or rejected request was routed at least once.
    assert!(report.routing_decisions().len() >= report.records().len());
    for r in report.records() {
        assert!(r.first_token >= r.arrival);
        assert!(r.finish >= r.first_token);
    }
}
