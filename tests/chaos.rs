//! Acceptance test for fault tolerance: on the bursty agentic trace, a
//! seeded Poisson crash schedule with MTTF 120 s — 10x the mean burst
//! length on the 240 s trace — must cost the autoscaled fleet almost
//! nothing: goodput stays at 100% (every request completes; the retry
//! budget is never exhausted) and interactive SLO attainment holds at
//! least 95% of the no-fault run. Crashes are real: the victim's KV
//! cache dies, salvaged requests pay full re-prefill after exponential
//! backoff, and the autoscaler respawns the lost replica through the
//! crash-deficit signal (cold start still applies). The `chaos` bench
//! bin sweeps the same setup across MTTF values.

use shift_parallelism::prelude::*;
use sp_cluster::{GpuSpec, InterconnectSpec, NodeSpec};
use sp_workload::bursty::BurstyConfig;

const KV_TOKENS: u64 = 60_000;
const PEAK_REPLICAS: usize = 4;
const MIN_REPLICAS: usize = 2;
const HORIZON_SECS: f64 = 240.0;
/// Same seed as the `chaos` bench, so the table and the gate agree.
const CRASH_SEED: u64 = 0xC4A5;

fn engine() -> Engine {
    let node = NodeSpec::new(GpuSpec::h200(), 1, InterconnectSpec::nvswitch());
    Engine::new(
        ExecutionModel::new(node, presets::qwen_32b()),
        Box::new(StaticPolicy::new("DP", ParallelConfig::single())),
        EngineConfig {
            kv_capacity_tokens: KV_TOKENS,
            class_slo: Some(ClassSlo::default()),
            queue_policy: QueuePolicy::InteractiveFirst,
            admission: AdmissionMode::PreemptRestart,
            ..EngineConfig::default()
        },
    )
}

/// The bursty agentic trace shared with `tests/autoscale.rs` and the
/// `autoscale`/`chaos` bench bins.
fn bursty_trace() -> Trace {
    let trace = BurstyConfig {
        duration: Dur::from_secs(HORIZON_SECS),
        base_rate: 2.0,
        bursts: 2,
        burst_size: 60,
        ..BurstyConfig::default()
    }
    .generate();
    let fits: Vec<Request> =
        trace.requests().iter().copied().filter(|r| r.total_tokens() <= KV_TOKENS).collect();
    Trace::with_ids(fits)
}

fn run_with(plan: FaultPlan, trace: &Trace, slo: ClassSlo) -> EngineReport {
    let scaler = Autoscaler::new(
        AutoscaleConfig {
            cold_start: Dur::from_secs(5.0),
            min_replicas: MIN_REPLICAS,
            max_replicas: PEAK_REPLICAS,
        },
        Box::new(LoadBandPolicy::new(2_000.0, 800.0).smoothing(1.0).cooldown(Dur::from_secs(1.0))),
        |_| engine(),
    );
    let retry = RetryPolicy { max_retries: 3, base_backoff: Dur::from_secs(0.25) };
    let mut sim = ClusterSim::new(
        (0..MIN_REPLICAS).map(|_| engine()).collect(),
        RoutingKind::EarliestDeadlineFeasible(slo).policy(),
    )
    .with_autoscaler(scaler)
    .with_faults(plan, retry);
    sim.run(trace)
}

#[test]
fn crashes_at_mttf_10x_burst_length_cost_under_5_points_of_attainment() {
    let trace = bursty_trace();
    let slo = ClassSlo::default();

    let baseline = run_with(FaultPlan::empty(), &trace, slo);
    assert_eq!(baseline.records().len(), trace.len(), "no-fault run must complete everything");
    let base_att = baseline.class_slo_report(&slo).interactive.attainment();

    let plan = FaultPlan::crashes_poisson(
        CRASH_SEED,
        Dur::from_secs(120.0),
        Dur::from_secs(HORIZON_SECS),
        PEAK_REPLICAS,
    );
    let report = run_with(plan, &trace, slo);
    let tl = report.fleet_timeline();
    let att = report.class_slo_report(&slo).interactive.attainment();
    eprintln!(
        "MTTF 120s: crashes {} | goodput {}/{} | failed {} | attainment {att:.3} vs no-fault \
         {base_att:.3} | wasted prefill {} | recoveries {} (mean {:.2}s)",
        tl.crash_count(),
        report.records().len(),
        trace.len(),
        report.failed().len(),
        tl.wasted_prefill_tokens(),
        tl.recoveries(),
        tl.mean_recovery_secs(),
    );

    // The schedule actually injected a crash, and the crash actually
    // displaced work (the KV cache died mid-request).
    assert!(tl.crash_count() >= 1, "seeded schedule produced no crashes");
    assert!(tl.wasted_prefill_tokens() > 0, "crash displaced no prefill work");
    assert!(tl.recoveries() >= 1, "no salvaged request was re-dispatched");

    // Goodput: every request still completes — the retry budget absorbs
    // every displacement.
    assert_eq!(
        report.records().len(),
        trace.len(),
        "goodput dropped: {} failed, {} rejected",
        report.failed().len(),
        report.rejected().len()
    );

    // The headline: >= 95% of the no-fault interactive SLO attainment.
    assert!(
        att >= 0.95 * base_att,
        "interactive attainment {att:.3} fell below 95% of no-fault {base_att:.3}"
    );
}

#[test]
fn repeated_crashes_degrade_latency_before_goodput() {
    let trace = bursty_trace();
    let slo = ClassSlo::default();

    let baseline = run_with(FaultPlan::empty(), &trace, slo);
    let base_att = baseline.class_slo_report(&slo).interactive.attainment();

    // MTTF 60 s: multiple crashes across the horizon. Latency is allowed
    // to sag, but the retry/respawn machinery must still complete every
    // request.
    let plan = FaultPlan::crashes_poisson(
        CRASH_SEED,
        Dur::from_secs(60.0),
        Dur::from_secs(HORIZON_SECS),
        PEAK_REPLICAS,
    );
    let report = run_with(plan, &trace, slo);
    let tl = report.fleet_timeline();
    let att = report.class_slo_report(&slo).interactive.attainment();
    eprintln!(
        "MTTF 60s: crashes {} | goodput {}/{} | attainment {att:.3} vs no-fault {base_att:.3}",
        tl.crash_count(),
        report.records().len(),
        trace.len(),
    );

    assert!(tl.crash_count() >= 2, "MTTF 60s over 240s should crash more than once");
    assert_eq!(report.records().len(), trace.len(), "goodput must survive repeated crashes");
    assert!(
        att >= 0.90 * base_att,
        "attainment {att:.3} collapsed below 90% of no-fault {base_att:.3} at MTTF 60s"
    );
    // Every crash spawned a replacement: the fleet never shrinks for
    // long. Crashed + retired events pair with spawns.
    let spawns = tl.events().iter().filter(|e| e.kind == ReplicaEventKind::Spawned).count();
    assert!(spawns > MIN_REPLICAS, "autoscaler never respawned after a crash (spawns {spawns})");
}
