//! Cross-crate integration tests: full deployments serving full traces.

use shift_parallelism::prelude::*;

fn node() -> NodeSpec {
    NodeSpec::p5en_48xlarge()
}

fn deploy(kind: DeploymentKind, model: ModelConfig) -> Deployment {
    Deployment::builder(node(), model).kind(kind).build().expect("deployable")
}

#[test]
fn every_kind_serves_every_dense_model() {
    for model in [presets::llama_70b(), presets::qwen_32b()] {
        for kind in [
            DeploymentKind::TensorParallel,
            DeploymentKind::DataParallel,
            DeploymentKind::SequenceParallel,
            DeploymentKind::Shift,
        ] {
            let trace = synthetic::poisson(12, 4.0, 1024, 16, 1);
            let report = deploy(kind, model.clone()).run(&trace);
            assert_eq!(report.records().len(), 12, "{kind:?} {}", model.name);
            assert_eq!(report.metrics().total_tokens(), trace.total_tokens());
        }
    }
}

#[test]
fn moe_models_deploy_with_paper_base_configs() {
    // §4.6: Scout needs (SP=4, TP=2); A3B replicates KV at SP=8.
    let scout = deploy(DeploymentKind::Shift, presets::llama_17b_16e());
    let a3b = deploy(DeploymentKind::Shift, presets::qwen_30b_a3b());
    for mut dep in [scout, a3b] {
        let report = dep.run(&synthetic::uniform_batch(4, 2048, 8));
        assert_eq!(report.records().len(), 4);
    }
}

#[test]
fn shift_matches_tp_latency_and_sp_prefill_simultaneously() {
    // The headline property, end-to-end: Shift's TTFT equals SP's (best)
    // and its TPOT equals TP's (best) on the same deployment.
    let model = presets::llama_70b();
    let trace = synthetic::single(8192, 100);
    let probe = |kind| {
        let mut report = deploy(kind, model.clone()).run(&trace);
        let m = report.metrics_mut();
        (m.ttft().median().unwrap(), m.tpot().median().unwrap())
    };
    let (ttft_sp, _) = probe(DeploymentKind::SequenceParallel);
    let (_, tpot_tp) = probe(DeploymentKind::TensorParallel);
    let (ttft_shift, tpot_shift) = probe(DeploymentKind::Shift);
    assert!((ttft_shift / ttft_sp - 1.0).abs() < 0.02, "shift TTFT should match SP's");
    assert!((tpot_shift / tpot_tp - 1.0).abs() < 0.02, "shift TPOT should match TP's");
}

#[test]
fn bursty_trace_shift_dominates_tp() {
    // Table 5's qualitative content on a scaled-down burst.
    let trace = BurstyConfig {
        duration: Dur::from_secs(120.0),
        bursts: 1,
        burst_size: 80,
        ..BurstyConfig::default()
    }
    .generate();
    let model = presets::llama_70b();
    let mut shift = deploy(DeploymentKind::Shift, model.clone()).run(&trace);
    let mut tp = deploy(DeploymentKind::TensorParallel, model).run(&trace);
    // Medians sit on small interactive requests where the two systems are
    // within scheduling noise of each other; the burst shows up in the
    // tail, where Shift must win clearly.
    assert!(
        shift.metrics_mut().ttft().median().unwrap()
            <= 1.2 * tp.metrics_mut().ttft().median().unwrap()
    );
    assert!(shift.metrics_mut().ttft().p99().unwrap() < tp.metrics_mut().ttft().p99().unwrap());
    assert!(
        shift.metrics_mut().completion().p99().unwrap()
            <= tp.metrics_mut().completion().p99().unwrap()
    );
}

#[test]
fn mooncake_like_load_overflows_tp_but_not_shift() {
    // Figure 10 in miniature: heavy conversation traffic on Qwen-32B with
    // FP8 KV; TP falls behind (growing TTFT), Shift stays bounded.
    let mut model = presets::qwen_32b();
    model.kv_precision = Precision::Fp8;
    let trace =
        MooncakeConfig { duration: Dur::from_secs(180.0), ..MooncakeConfig::default() }.generate();

    let late_over_early = |report: &mut EngineReport| {
        let mut records = report.records().to_vec();
        records.sort_by_key(|r| r.request_id);
        let n = records.len();
        let early: f64 =
            records[..n / 4].iter().map(|r| r.ttft().as_secs()).sum::<f64>() / (n / 4) as f64;
        let late: f64 = records[3 * n / 4..].iter().map(|r| r.ttft().as_secs()).sum::<f64>()
            / (n - 3 * n / 4) as f64;
        late / early
    };
    let mut tp = deploy(DeploymentKind::TensorParallel, model.clone()).run(&trace);
    let mut shift = deploy(DeploymentKind::Shift, model).run(&trace);
    let tp_growth = late_over_early(&mut tp);
    let shift_growth = late_over_early(&mut shift);
    assert!(tp_growth > 2.0, "TP queue should grow (got {tp_growth:.2}x)");
    assert!(shift_growth < tp_growth, "Shift must degrade less than TP");
}

#[test]
fn production_stack_composes_end_to_end() {
    let stack = ProductionStack::arctic_like();
    let mut dep = stack.deploy(node(), presets::llama_70b()).unwrap();
    let trace = synthetic::poisson(10, 2.0, 2048, 64, 9);
    let report = dep.run(&trace);
    assert_eq!(report.records().len(), 10);
    // Speculation preserves client-visible token counts.
    assert_eq!(report.metrics().total_tokens(), trace.total_tokens());
}

#[test]
fn deployment_is_reusable_across_runs() {
    let mut dep = deploy(DeploymentKind::Shift, presets::qwen_32b());
    let first = dep.run(&synthetic::uniform_batch(3, 512, 8));
    let second = dep.run(&synthetic::uniform_batch(5, 512, 8));
    assert_eq!(first.records().len(), 3);
    assert_eq!(second.records().len(), 5);
}
