//! # Shift Parallelism
//!
//! A full reproduction, in Rust, of *Shift Parallelism: Low-Latency,
//! High-Throughput LLM Inference for Dynamic Workloads* (ASPLOS 2026,
//! Snowflake AI Research) — the dynamic SP↔TP parallelism switch with
//! generalized KV-cache invariance, rebuilt on an analytical multi-GPU
//! simulator (see `DESIGN.md` for the substitution map).
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`metrics`] | streaming stats, percentiles, simulated time |
//! | [`cluster`] | GPU/node hardware model, collective cost models |
//! | [`model`] | transformer descriptors + FLOP/byte accounting |
//! | [`kvcache`] | paged KV-cache, head-shard layouts, replication |
//! | [`parallel`] | TP/DP/SP execution plans and the Algorithm 1 cost walk |
//! | [`workload`] | trace generators (bursty, Azure-code, Mooncake) |
//! | [`engine`] | discrete-event serving engine, DP router |
//! | [`core`] | **Shift Parallelism** policy, invariance, deployments |
//! | [`accel`] | SwiftKV + speculative decoding composition |
//!
//! # Quickstart
//!
//! ```
//! use shift_parallelism::prelude::*;
//!
//! // Deploy Llama-70B with Shift Parallelism on an 8xH200 node.
//! let mut dep = Deployment::builder(NodeSpec::p5en_48xlarge(), presets::llama_70b())
//!     .kind(DeploymentKind::Shift)
//!     .build()
//!     .unwrap();
//!
//! // Serve a 4k-token interactive request.
//! let mut report = dep.run(&synthetic::single(4096, 64));
//! let ttft_ms = report.metrics_mut().ttft().median().unwrap() * 1e3;
//! assert!(ttft_ms < 500.0);
//! ```

pub use shift_core as core;
pub use sp_accel as accel;
pub use sp_cluster as cluster;
pub use sp_engine as engine;
pub use sp_kvcache as kvcache;
pub use sp_metrics as metrics;
pub use sp_model as model;
pub use sp_numeric as numeric;
pub use sp_parallel as parallel;
pub use sp_workload as workload;

/// The most common imports, one `use` away.
pub mod prelude {
    pub use shift_core::{
        Deployment, DeploymentKind, InvarianceCertificate, ShiftPolicy, ShiftWeightPlan,
        WeightStrategy, DEFAULT_SHIFT_THRESHOLD,
    };
    pub use sp_accel::{FrameworkProfile, ProductionStack, SwiftKv};
    pub use sp_cluster::{CollectiveModel, GpuSpec, InterconnectSpec, NodeSpec, Roofline};
    pub use sp_engine::{
        AdmissionMode, AutoscaleConfig, Autoscaler, ClusterSim, DataParallelCluster,
        EarliestDeadlineFeasible, Engine, EngineConfig, EngineReport, Fault, FaultEvent, FaultPlan,
        FleetSignal, LoadBandPolicy, NeverScale, QueuePolicy, ReferenceClusterSim, RetryPolicy,
        RoutingKind, ScaleAction, ScalePolicy, SimNode, SpecDecode,
    };
    pub use sp_metrics::{
        ClassSlo, ClassSloReport, Dur, FailedRequest, FleetTimeline, LatencyRecorder, NodeLoad,
        Quantiles, ReplicaEventKind, RequestFaultEvent, RequestFaultKind, RequestRecord, SimTime,
        SloReport, SloTarget,
    };
    pub use sp_model::{presets, ModelConfig, MoeConfig, Precision};
    pub use sp_parallel::{
        BatchWork, ChunkWork, EngineOverhead, ExecutionModel, MemoryPlan, ParallelConfig,
        ParallelismPolicy, ProcessMapping, StaticPolicy,
    };
    pub use sp_workload::{
        azure::AzureCodeConfig, bursty::BurstyConfig, mixed::ProductionMixConfig,
        mooncake::MooncakeConfig, synthetic, Request, RequestClass, Trace,
    };
}
