//! `spsim` — command-line front end for the Shift Parallelism simulator.
//!
//! ```text
//! spsim plan                      # capacity-plan all Table 4 models
//! spsim run   [options]           # run one deployment over a workload
//! spsim compare [options]         # run TP/DP/SP/Shift over a workload
//! spsim trace <name> [--out F]    # emit a workload as JSON lines
//!
//! options:
//!   --model  llama-70b|qwen-32b|llama-17b-16e|qwen-30b-a3b   (default llama-70b)
//!   --kind   tp|dp|sp|shift                                  (default shift)
//!   --trace  bursty|azure|mooncake|poisson|batch             (default poisson)
//!   --file   trace.jsonl      replay a saved trace instead of generating
//!   --requests N   --rate R   --input I   --output O   --seed S
//! ```

use shift_parallelism::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    flags
}

fn model_by_name(name: &str) -> Option<ModelConfig> {
    match name {
        "llama-70b" => Some(presets::llama_70b()),
        "qwen-32b" => Some(presets::qwen_32b()),
        "llama-17b-16e" => Some(presets::llama_17b_16e()),
        "qwen-30b-a3b" => Some(presets::qwen_30b_a3b()),
        _ => None,
    }
}

fn kind_by_name(name: &str) -> Option<DeploymentKind> {
    match name {
        "tp" => Some(DeploymentKind::TensorParallel),
        "dp" => Some(DeploymentKind::DataParallel),
        "sp" => Some(DeploymentKind::SequenceParallel),
        "shift" => Some(DeploymentKind::Shift),
        _ => None,
    }
}

fn build_trace(flags: &HashMap<String, String>) -> Result<Trace, String> {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let requests: usize = get("requests", "100").parse().map_err(|e| format!("--requests: {e}"))?;
    let rate: f64 = get("rate", "2.0").parse().map_err(|e| format!("--rate: {e}"))?;
    let input: u32 = get("input", "4096").parse().map_err(|e| format!("--input: {e}"))?;
    let output: u32 = get("output", "250").parse().map_err(|e| format!("--output: {e}"))?;
    let seed: u64 = get("seed", "0").parse().map_err(|e| format!("--seed: {e}"))?;

    if let Some(path) = flags.get("file") {
        return Trace::load(path).map_err(|e| format!("cannot load {path}: {e}"));
    }
    match get("trace", "poisson").as_str() {
        "bursty" => {
            Ok(BurstyConfig { seed: seed.wrapping_add(0xB5), ..BurstyConfig::default() }.generate())
        }
        "azure" => {
            Ok(AzureCodeConfig { seed: seed.wrapping_add(0xA2), ..AzureCodeConfig::default() }
                .generate())
        }
        "mooncake" => {
            Ok(MooncakeConfig { seed: seed.wrapping_add(0x30), ..MooncakeConfig::default() }
                .generate())
        }
        "poisson" => Ok(synthetic::poisson(requests, rate, input, output, seed)),
        "batch" => Ok(synthetic::uniform_batch(requests, input, output)),
        other => Err(format!("unknown trace '{other}'")),
    }
}

fn summarize(name: &str, report: &mut EngineReport) {
    let tput = report.combined_throughput();
    let preempt = report.preemptions();
    let rejected = report.rejected().len();
    let m = report.metrics_mut();
    println!(
        "{name:>6}  TTFT p50 {:7.0} ms  p99 {:8.0} ms | TPOT p50 {:5.1} ms | \
         compl p50 {:7.2} s | {tput:7.0} tok/s | done {} rej {rejected} preempt {preempt}",
        m.ttft().median().unwrap_or(0.0) * 1e3,
        m.ttft().p99().unwrap_or(0.0) * 1e3,
        m.tpot().median().unwrap_or(0.0) * 1e3,
        m.completion().median().unwrap_or(0.0),
        m.completed(),
    );
}

fn cmd_plan() -> ExitCode {
    let node = NodeSpec::p5en_48xlarge();
    for model in presets::all_table4() {
        match Deployment::auto_base(&node, &model, 0.9) {
            Ok(base) => {
                let plan = ShiftWeightPlan::new(&model, base, WeightStrategy::SeparateModels);
                println!(
                    "{:16} base {base}  weights/GPU {:.1} GB (+{:.1}% shift)  KV heads {}",
                    model.name,
                    plan.total_bytes_per_gpu() as f64 / 1e9,
                    plan.overhead_fraction() * 100.0,
                    model.kv_heads
                );
            }
            Err(e) => println!("{:16} no viable base: {e}", model.name),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_run(flags: &HashMap<String, String>, kinds: &[(&str, DeploymentKind)]) -> ExitCode {
    let model_name = flags.get("model").cloned().unwrap_or_else(|| "llama-70b".to_string());
    let Some(model) = model_by_name(&model_name) else {
        eprintln!("unknown model '{model_name}'");
        return ExitCode::FAILURE;
    };
    let trace = match build_trace(flags) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "workload: {} requests, {:.2}M tokens, span {:.0}s | model {}",
        trace.len(),
        trace.total_tokens() as f64 / 1e6,
        trace.span().as_secs(),
        model.name
    );
    for (name, kind) in kinds {
        let mut dep =
            match Deployment::builder(NodeSpec::p5en_48xlarge(), model.clone()).kind(*kind).build()
            {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{name}: cannot deploy: {e}");
                    return ExitCode::FAILURE;
                }
            };
        let mut report = dep.run(&trace);
        summarize(name, &mut report);
        if let Some((base, shift, switches)) = dep.shift_stats() {
            println!(
                "        shift policy: {base} base / {shift} shift iterations, \
                 {switches} switches"
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("usage: spsim trace <bursty|azure|mooncake> [--out FILE]");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let mut with_name = flags.clone();
    with_name.insert("trace".into(), name.clone());
    let trace = match build_trace(&with_name) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let jsonl = trace.to_jsonl();
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, jsonl) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} requests to {path}", trace.len());
        }
        None => println!("{jsonl}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("plan") => cmd_plan(),
        Some("run") => {
            let flags = parse_flags(&args[1..]);
            let kind_name = flags.get("kind").cloned().unwrap_or_else(|| "shift".to_string());
            let Some(kind) = kind_by_name(&kind_name) else {
                eprintln!("unknown kind '{kind_name}'");
                return ExitCode::FAILURE;
            };
            let label: &str = match kind_name.as_str() {
                "tp" => "TP",
                "dp" => "DP",
                "sp" => "SP",
                _ => "Shift",
            };
            cmd_run(&flags, &[(label, kind)])
        }
        Some("compare") => {
            let flags = parse_flags(&args[1..]);
            cmd_run(
                &flags,
                &[
                    ("TP", DeploymentKind::TensorParallel),
                    ("DP", DeploymentKind::DataParallel),
                    ("SP", DeploymentKind::SequenceParallel),
                    ("Shift", DeploymentKind::Shift),
                ],
            )
        }
        Some("trace") => cmd_trace(&args[1..]),
        _ => {
            eprintln!(
                "usage: spsim <plan|run|compare|trace> [options]\n\
                 see `src/bin/spsim.rs` header for the full option list"
            );
            ExitCode::FAILURE
        }
    }
}
