//! Value-generation strategies (the sampled subset of proptest's).

use rand::rngs::StdRng;
use rand::Rng as _;

/// The runner's generator type.
pub type TestRng = StdRng;

/// Produces arbitrary values of an output type from a random stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore as _;
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Vectors whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        VecStrategy { elem, lo, hi }
    }

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive-lo, exclusive-hi bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                if self.lo + 1 >= self.hi { self.lo } else { rng.gen_range(self.lo..self.hi) };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}
