//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace ships a
//! deterministic mini property-testing harness with the subset of
//! proptest's API its tests use: `proptest!`, strategies over ranges,
//! tuples, `Just`, `prop_oneof!`, `prop::collection::vec`, `any::<T>()`,
//! `.prop_map`, and `prop_assert*!`.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case panics with the sampled inputs instead
//!   of a minimized counterexample;
//! * sampling is plain uniform draws from a per-test seeded generator, so
//!   every run of a test explores the same cases (fully reproducible);
//! * `ProptestConfig` only honors `cases`.

use rand::rngs::StdRng;

pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Runtime support used by the macros; not part of the public API.
#[doc(hidden)]
pub mod __rt {
    pub use super::strategy::Strategy;
    pub use super::ProptestConfig;
    pub type TestRng = super::StdRng;

    /// Stable per-test seed from the test's name.
    pub fn seed_rng(name: &str) -> TestRng {
        use rand::SeedableRng as _;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(hash)
    }
}

/// Everything a property test needs, one `use` away.
pub mod prelude {
    pub use super::strategy::{any, Arbitrary, Just, Strategy};
    pub use super::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `proptest::prelude::prop` module alias.
    pub mod prop {
        pub use crate::strategy::collection;
    }
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// samples its arguments `config.cases` times from a deterministic,
/// name-seeded generator.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::__rt::ProptestConfig = $cfg;
            let mut __rng = $crate::__rt::seed_rng(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::__rt::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// A strategy drawing uniformly from several alternative strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Skips the current sampled case when its precondition fails (the shim
/// moves on to the next case rather than resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(pair in (0u32..10, 5u64..6), flag in any::<bool>()) {
            let (a, b) = pair;
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_limits_cases(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }

        #[test]
        fn oneof_and_map_work(
            v in prop::collection::vec(prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)], 1..8)
        ) {
            prop_assert!(!v.is_empty());
            for x in v {
                prop_assert!(x == 1 || (20..40).contains(&x));
            }
        }
    }
}
