//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace ships a
//! deterministic mini property-testing harness with the subset of
//! proptest's API its tests use: `proptest!`, strategies over ranges,
//! tuples, `Just`, `prop_oneof!`, `prop::collection::vec`, `any::<T>()`,
//! `.prop_map`, and `prop_assert*!`.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case panics with the sampled inputs instead
//!   of a minimized counterexample;
//! * sampling is plain uniform draws from a per-test seeded generator, so
//!   every run of a test explores the same cases (fully reproducible);
//! * `ProptestConfig` only honors `cases`.
//!
//! Environment knobs (CI hooks):
//!
//! * `SP_PROPTEST_SEED=<u64>` — mixes the given seed into every test's
//!   name-derived seed, letting CI pin (or rotate) the explored cases;
//! * `PROPTEST_CASES=<u32>` — overrides every test's case count;
//! * on a failing case, the harness writes
//!   `target/proptest-failures/<test>.txt` recording the test name, the
//!   resolved seed, and the 0-based failing case index — re-export the
//!   recorded `SP_PROPTEST_SEED` to replay the exact same cases locally.

use rand::rngs::StdRng;

pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Runtime support used by the macros; not part of the public API.
#[doc(hidden)]
pub mod __rt {
    pub use super::strategy::Strategy;
    pub use super::ProptestConfig;
    use std::cell::RefCell;
    use std::io::Write as _;
    pub type TestRng = super::StdRng;

    thread_local! {
        /// The (test name, resolved seed, case index) currently running on
        /// this thread, consulted by the panic hook to write the failure
        /// artifact.
        static CURRENT_CASE: RefCell<Option<(String, u64, u32)>> = const { RefCell::new(None) };
    }

    /// Stable per-test seed: an FNV-1a hash of the test's name, mixed
    /// with `SP_PROPTEST_SEED` when the environment sets one.
    pub fn resolve_seed(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        match std::env::var("SP_PROPTEST_SEED").ok().and_then(|s| s.trim().parse::<u64>().ok()) {
            Some(env_seed) => hash ^ env_seed,
            None => hash,
        }
    }

    /// Seeds the per-test generator.
    pub fn seed_rng(seed: u64) -> TestRng {
        use rand::SeedableRng as _;
        TestRng::seed_from_u64(seed)
    }

    /// The case count: `PROPTEST_CASES` when set, else the config's.
    pub fn cases(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .unwrap_or(configured)
            .max(1)
    }

    /// Marks a case as running (for the failure artifact).
    pub fn enter_case(name: &str, seed: u64, case: u32) {
        CURRENT_CASE.with(|c| *c.borrow_mut() = Some((name.to_string(), seed, case)));
    }

    /// Marks the test body as finished without a failure.
    pub fn exit_case() {
        CURRENT_CASE.with(|c| *c.borrow_mut() = None);
    }

    /// Installs (once, process-wide) a panic hook that records the failing
    /// property case to `target/proptest-failures/<test>.txt` before
    /// delegating to the previous hook. No-op for panics outside a
    /// property test body.
    pub fn install_failure_hook() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                CURRENT_CASE.with(|c| {
                    if let Some((name, seed, case)) = c.borrow().as_ref() {
                        write_artifact(name, *seed, *case, info);
                    }
                });
                prev(info);
            }));
        });
    }

    fn write_artifact(name: &str, seed: u64, case: u32, info: &std::panic::PanicHookInfo<'_>) {
        let dir = std::path::Path::new("target").join("proptest-failures");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.txt"))) {
            let _ = writeln!(f, "test: {name}");
            let _ = writeln!(f, "seed: {seed}");
            let _ = writeln!(f, "failing_case_index: {case}");
            let _ = writeln!(
                f,
                "replay: SP_PROPTEST_SEED is mixed (xor) into the name hash; rerun the \
                 test with the same SP_PROPTEST_SEED (or none, if none was set) to \
                 replay this exact case sequence."
            );
            let _ = writeln!(f, "panic: {info}");
        }
    }
}

/// Everything a property test needs, one `use` away.
pub mod prelude {
    pub use super::strategy::{any, Arbitrary, Just, Strategy};
    pub use super::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `proptest::prelude::prop` module alias.
    pub mod prop {
        pub use crate::strategy::collection;
    }
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// samples its arguments `config.cases` times from a deterministic,
/// name-seeded generator.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::__rt::ProptestConfig = $cfg;
            let __cases = $crate::__rt::cases(__config.cases);
            let __seed = $crate::__rt::resolve_seed(stringify!($name));
            let mut __rng = $crate::__rt::seed_rng(__seed);
            $crate::__rt::install_failure_hook();
            for __case in 0..__cases {
                $crate::__rt::enter_case(stringify!($name), __seed, __case);
                $(let $arg = $crate::__rt::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
            $crate::__rt::exit_case();
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// A strategy drawing uniformly from several alternative strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Skips the current sampled case when its precondition fails (the shim
/// moves on to the next case rather than resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(pair in (0u32..10, 5u64..6), flag in any::<bool>()) {
            let (a, b) = pair;
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_limits_cases(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }

        #[test]
        fn oneof_and_map_work(
            v in prop::collection::vec(prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)], 1..8)
        ) {
            prop_assert!(!v.is_empty());
            for x in v {
                prop_assert!(x == 1 || (20..40).contains(&x));
            }
        }
    }
}
