//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace ships a
//! minimal wall-clock harness with the API surface its benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, and `black_box`.
//! No statistics beyond mean-over-batch; results print as
//! `name ... mean_ns/iter` lines.

use std::time::Instant;

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for compatibility; the
/// shim always runs setup per batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Criterion {
        Criterion { sample_size: 100 }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size.max(10), _parent: self }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let samples = self.sample_size.max(10);
        run_benchmark(&name.into(), samples, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { total_ns: 0, iters: 0 };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mean =
        if bencher.iters == 0 { 0.0 } else { bencher.total_ns as f64 / bencher.iters as f64 };
    println!("bench {name:<50} {mean:>12.1} ns/iter ({} iters)", bencher.iters);
}

/// Times the measured routine.
pub struct Bencher {
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times `routine` once per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.total_ns += start.elapsed().as_nanos();
        self.iters += 1;
    }

    /// Times `routine` on a fresh input from `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.total_ns += start.elapsed().as_nanos();
        self.iters += 1;
    }
}

/// Declares a benchmark group runner (compatible call shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
