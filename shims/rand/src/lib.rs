//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace ships
//! the subset of `rand`'s 0.8 API it actually uses, backed by the
//! splitmix64/xoshiro256** generators. Everything is deterministic and
//! seedable — exactly what the trace regenerators and tests need. The
//! statistical stream differs from upstream `StdRng` (ChaCha12), which is
//! fine: nothing in the workspace depends on the exact stream, only on
//! determinism and reasonable uniformity.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform f64 in [0, 1).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over an interval (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = lo + u * (hi - lo);
        // Floating rounding can land exactly on `hi`; fold it back.
        if v >= hi {
            lo
        } else {
            v.max(lo)
        }
    }
    fn sample_inclusive<R: Rng + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        if lo == hi {
            return lo;
        }
        // The closed upper endpoint has measure zero; reuse the half-open
        // sampler.
        f64::sample_half_open(lo, hi, rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        let wide = f64::sample_half_open(f64::from(lo), f64::from(hi), rng);
        (wide as f32).clamp(lo, f32_prev(hi))
    }
    fn sample_inclusive<R: Rng + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        if lo == hi {
            return lo;
        }
        let wide = f64::sample_inclusive(f64::from(lo), f64::from(hi), rng);
        (wide as f32).clamp(lo, hi)
    }
}

fn f32_prev(x: f32) -> f32 {
    if x > f32::MIN_POSITIVE {
        f32::from_bits(x.to_bits() - 1)
    } else {
        x
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64. Fast, 256-bit state, passes BigCrush — more than
    /// enough for trace synthesis.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: u32 = rng.gen_range(3..=3);
            assert_eq!(y, 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let m: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(m > 0.0 && m < 1.0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
